// Package trace records notable simulation events — injections, deliveries,
// deadlock presumptions, recoveries and Token movements — into a bounded
// ring buffer for debugging and teaching. Tracing is opt-in and records
// only packet-level events, so it does not perturb the per-flit hot path.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind classifies an event.
type Kind int

const (
	// Inject: a packet's header entered the network at its source.
	Inject Kind = iota
	// Deliver: a packet's tail was consumed at its destination.
	Deliver
	// Timeout: a blocked header's T_elapsed crossed T_out.
	Timeout
	// Recover: a packet was switched onto the Deadlock Buffer lane.
	Recover
	// TokenCapture: the recovery Token was captured at a router.
	TokenCapture
	// TokenRelease: the destination released the Token.
	TokenRelease
	// Kill: abort-and-retry recovery purged the packet for retransmission.
	Kill
	// Drop: a dynamic reconfiguration event (link or router kill) discarded
	// the packet's in-flight flits; unlike Kill it is not retransmitted.
	Drop
)

var kindNames = [...]string{"inject", "deliver", "timeout", "recover", "token-capture", "token-release", "kill", "drop"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind maps a kind's string form (as emitted in JSONL event lines)
// back to the Kind, reporting whether the name is known.
func ParseKind(s string) (Kind, bool) {
	for i, name := range kindNames {
		if name == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// KindStrings returns every kind's string form in canonical (declaration)
// order, for tools that render per-kind summaries.
func KindStrings() []string {
	return append([]string(nil), kindNames[:]...)
}

// Event is one recorded occurrence.
type Event struct {
	Cycle sim.Cycle
	Kind  Kind
	Node  topology.Node
	Pkt   packet.ID
}

func (e Event) String() string {
	return fmt.Sprintf("[%6d] %-13s node=%-4d pkt=%d", e.Cycle, e.Kind, e.Node, e.Pkt)
}

// Buffer is a fixed-capacity event ring. The zero value is unusable; use
// New. All methods are safe on a nil *Buffer (reads return zero values,
// Record is a no-op), so instrumentation call sites never need their own
// tracing-enabled checks.
type Buffer struct {
	events []Event
	next   int
	total  int64
	counts map[Kind]int64
	sink   func(Event)
}

// New returns a ring buffer keeping the most recent capacity events.
func New(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{events: make([]Event, 0, capacity), counts: make(map[Kind]int64)}
}

// SetSink installs a callback that observes every recorded event as it
// happens (nil detaches). The ring only retains the most recent events;
// a sink sees them all — the JSONL trace export streams through it.
func (b *Buffer) SetSink(fn func(Event)) {
	if b == nil {
		return
	}
	b.sink = fn
}

// Record appends an event, evicting the oldest when full. No-op on nil.
func (b *Buffer) Record(e Event) {
	if b == nil {
		return
	}
	if len(b.events) < cap(b.events) {
		b.events = append(b.events, e)
	} else {
		b.events[b.next] = e
		b.next = (b.next + 1) % cap(b.events)
	}
	b.total++
	b.counts[e.Kind]++
	if b.sink != nil {
		b.sink(e)
	}
}

// Total returns how many events were ever recorded (including evicted).
func (b *Buffer) Total() int64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Count returns how many events of kind were ever recorded.
func (b *Buffer) Count(k Kind) int64 {
	if b == nil {
		return 0
	}
	return b.counts[k]
}

// Events returns the retained events oldest-first.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	out := make([]Event, 0, len(b.events))
	if len(b.events) == cap(b.events) {
		out = append(out, b.events[b.next:]...)
		out = append(out, b.events[:b.next]...)
		return out
	}
	return append(out, b.events...)
}

// Filter returns retained events of one kind, oldest-first.
func (b *Buffer) Filter(k Kind) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// PacketHistory returns retained events for one packet, oldest-first.
func (b *Buffer) PacketHistory(id packet.ID) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Pkt == id {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events, one per line.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
