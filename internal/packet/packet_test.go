package packet

import (
	"testing"

	"repro/internal/topology"
)

func TestFlitKinds(t *testing.T) {
	p := New(1, 0, 5, 4, 10)
	kinds := []Kind{Header, Body, Body, Tail}
	for i, want := range kinds {
		if got := p.Flit(i).Kind(); got != want {
			t.Errorf("flit %d kind = %v, want %v", i, got, want)
		}
	}
	if !p.Flit(0).IsHeader() || p.Flit(1).IsHeader() {
		t.Error("IsHeader wrong")
	}
	if !p.Flit(3).IsTail() || p.Flit(2).IsTail() {
		t.Error("IsTail wrong")
	}
}

func TestSingleFlitPacket(t *testing.T) {
	p := New(2, 0, 1, 1, 0)
	f := p.Flit(0)
	if f.Kind() != HeaderTail || !f.IsHeader() || !f.IsTail() {
		t.Fatalf("single flit kind = %v", f.Kind())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Header: "header", Body: "body", Tail: "tail", HeaderTail: "header+tail", Kind(9): "Kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-length packet did not panic")
		}
	}()
	New(1, 0, 1, 0, 0)
}

func TestFlitRangePanics(t *testing.T) {
	p := New(1, 0, 1, 4, 0)
	for _, seq := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Flit(%d) did not panic", seq)
				}
			}()
			p.Flit(seq)
		}()
	}
}

func TestTimestamps(t *testing.T) {
	p := New(1, topology.Node(0), topology.Node(9), 4, 100)
	if p.DeliveredAt != -1 || p.InjectedAt != -1 || p.RecoveredAt != -1 {
		t.Fatal("fresh packet has non-(-1) timestamps")
	}
	p.InjectedAt = 110
	p.DeliveredAt = 150
	if p.Age() != 50 {
		t.Errorf("Age = %d, want 50", p.Age())
	}
	if p.NetworkLatency() != 40 {
		t.Errorf("NetworkLatency = %d, want 40", p.NetworkLatency())
	}
}

func TestLatencyPanicsBeforeDelivery(t *testing.T) {
	p := New(1, 0, 1, 4, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Age on undelivered packet did not panic")
			}
		}()
		p.Age()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NetworkLatency on undelivered packet did not panic")
			}
		}()
		p.NetworkLatency()
	}()
}

func TestDelivered(t *testing.T) {
	p := New(1, 0, 1, 3, 0)
	for i := 0; i < 3; i++ {
		if p.Delivered() {
			t.Fatalf("Delivered true after %d flits", i)
		}
		p.FlitsDelivered++
	}
	if !p.Delivered() {
		t.Fatal("Delivered false after all flits")
	}
}

func TestStrings(t *testing.T) {
	p := New(7, 1, 2, 3, 0)
	if p.String() == "" || p.Flit(0).String() == "" {
		t.Fatal("String methods must be non-empty")
	}
}
