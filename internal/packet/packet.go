// Package packet defines the messages moved by the simulator: multi-flit
// wormhole packets and the flits they decompose into, together with the
// per-packet bookkeeping that the routing algorithms in this repository need
// (misroute counts for Disha's livelock bound, dimension-reversal counts for
// Dally & Aoki, class state for Duato, and recovery state for the Deadlock
// Buffer lane).
package packet

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// ID uniquely identifies a packet within one simulation.
type ID int64

// Kind classifies a flit's position within its packet.
type Kind int

const (
	// Header is the first flit; it carries routing information and reserves
	// channel state as it advances.
	Header Kind = iota
	// Body is an interior data flit.
	Body
	// Tail is the last flit; it releases reserved channel state.
	Tail
	// HeaderTail is the only flit of a single-flit packet.
	HeaderTail
)

// String names the flit kind for traces and test failures.
func (k Kind) String() string {
	switch k {
	case Header:
		return "header"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeaderTail:
		return "header+tail"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Flit is one flow-control unit. Flits are small values; all shared mutable
// state lives on the owning Packet.
type Flit struct {
	Pkt *Packet
	Seq int // 0-based position within the packet
}

// Kind derives the flit's role from its position.
func (f Flit) Kind() Kind {
	switch {
	case f.Pkt.Length == 1:
		return HeaderTail
	case f.Seq == 0:
		return Header
	case f.Seq == f.Pkt.Length-1:
		return Tail
	default:
		return Body
	}
}

// IsHeader reports whether this flit leads its packet.
func (f Flit) IsHeader() bool { return f.Seq == 0 }

// IsTail reports whether this flit ends its packet.
func (f Flit) IsTail() bool { return f.Seq == f.Pkt.Length-1 }

// String renders the flit as "pktID/kind[seq/len]" for traces.
func (f Flit) String() string {
	return fmt.Sprintf("pkt%d/%s[%d/%d]", f.Pkt.ID, f.Kind(), f.Seq, f.Pkt.Length)
}

// Packet is a wormhole message. The simulator creates each packet once and
// threads pointers to it through flits and channel state; fields below the
// routing-state comment are mutated as the packet advances.
type Packet struct {
	ID     ID
	Src    topology.Node
	Dst    topology.Node
	Length int // number of flits

	// Timing, in simulation cycles.
	CreatedAt   sim.Cycle // enqueued at the source
	InjectedAt  sim.Cycle // header entered the router at the source
	DeliveredAt sim.Cycle // tail consumed at the destination; -1 until then

	// Routing state.
	Hops            int    // header hops taken so far
	Misroutes       int    // non-profitable hops taken (Disha livelock bound)
	DimReversals    int    // higher-to-lower dimension traversals (Dally & Aoki)
	OnDeterministic bool   // Dally & Aoki: forced onto the deterministic class
	DatelineCrossed uint64 // bit d set once the packet crossed dimension d's torus dateline
	LastDim         int    // dimension of the previous hop (-1 before the first hop)

	// Retries counts abort-and-retry retransmissions of this packet.
	Retries int

	// Deadlock recovery state (Disha).
	OnDB        bool      // packet switched onto the Deadlock Buffer lane
	TimedOut    bool      // packet ever presumed deadlocked
	SeizedToken bool      // packet captured the recovery Token
	RecoveredAt sim.Cycle // cycle the packet switched to the DB lane; -1 if never

	// Delivery accounting.
	FlitsDelivered int // flits consumed at the destination so far
	HeaderArrived  bool
}

// New creates a packet with delivery timestamps initialized to -1.
func New(id ID, src, dst topology.Node, length int, now sim.Cycle) *Packet {
	if length < 1 {
		panic("packet: length must be >= 1")
	}
	return &Packet{
		ID:          id,
		Src:         src,
		Dst:         dst,
		Length:      length,
		CreatedAt:   now,
		InjectedAt:  -1,
		DeliveredAt: -1,
		RecoveredAt: -1,
		LastDim:     -1,
	}
}

// Flit returns flit seq of this packet.
func (p *Packet) Flit(seq int) Flit {
	if seq < 0 || seq >= p.Length {
		panic(fmt.Sprintf("packet: flit %d out of range for length %d", seq, p.Length))
	}
	return Flit{Pkt: p, Seq: seq}
}

// Delivered reports whether every flit has been consumed at the destination.
func (p *Packet) Delivered() bool { return p.FlitsDelivered == p.Length }

// Age returns creation-to-delivery latency; it panics if not yet delivered.
func (p *Packet) Age() sim.Cycle {
	if p.DeliveredAt < 0 {
		panic("packet: Age on undelivered packet")
	}
	return p.DeliveredAt - p.CreatedAt
}

// NetworkLatency returns injection-to-delivery latency (excludes source
// queueing); it panics if the packet has not been injected and delivered.
func (p *Packet) NetworkLatency() sim.Cycle {
	if p.DeliveredAt < 0 || p.InjectedAt < 0 {
		panic("packet: NetworkLatency on undelivered packet")
	}
	return p.DeliveredAt - p.InjectedAt
}

// String summarizes the packet's identity and progress for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt%d %d->%d len=%d hops=%d", p.ID, p.Src, p.Dst, p.Length, p.Hops)
}
