package disha_test

import (
	"bytes"
	"io"
	"maps"
	"net/http"
	"strings"
	"testing"

	disha "repro"
)

// wedgeConfig is a configuration that reliably presumes deadlocks: single VC,
// shallow buffers, high load, recovery enabled.
func wedgeConfig(seed uint64) disha.SimConfig {
	return disha.SimConfig{
		Topo:        disha.Torus(8, 8),
		Algorithm:   disha.DishaRouting(0),
		Pattern:     nil, // filled by caller via defaultPattern
		LoadRate:    0.9,
		MsgLen:      8,
		VCs:         1,
		BufferDepth: 2,
		Timeout:     8,
		Seed:        seed,
	}
}

func newWedgeSim(t testing.TB, seed uint64) *disha.Simulator {
	cfg := wedgeConfig(seed)
	cfg.Pattern = disha.Uniform(cfg.Topo)
	sim, err := disha.NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestTelemetryDeterminism runs the same seed twice — once bare, once with
// every telemetry feature enabled (tight sampling, flight recorder, JSONL
// writer, trace sink) — and requires bit-identical results: same counters,
// same per-packet latencies. Telemetry is pull-based; it must never perturb
// the simulation.
func TestTelemetryDeterminism(t *testing.T) {
	run := func(instrument bool) (map[string]int64, []float64) {
		sim := newWedgeSim(t, 7)
		if instrument {
			var jsonl bytes.Buffer
			tw := disha.NewTelemetryWriter(&jsonl)
			sim.EnableTelemetry(disha.TelemetryOptions{
				SampleEvery: 10, FlightDepth: 32, SnapshotCooldown: 100, Writer: tw,
				ProfileEvery: 16,
			})
			tb := sim.EnableTrace(1024)
			tb.SetSink(func(e disha.TraceEvent) {
				tw.Event(int64(e.Cycle), e.Kind.String(), int(e.Node), int64(e.Pkt))
			})
		}
		var lats []float64
		sim.OnDeliver(func(p *disha.Packet) { lats = append(lats, float64(p.Age())) })
		sim.Run(3000)
		return sim.CountersMap(), lats
	}

	bareCounters, bareLats := run(false)
	telCounters, telLats := run(true)

	if !maps.Equal(bareCounters, telCounters) {
		t.Fatalf("telemetry changed counters:\nbare: %v\ntele: %v", bareCounters, telCounters)
	}
	if len(bareLats) != len(telLats) {
		t.Fatalf("telemetry changed delivery count: %d vs %d", len(bareLats), len(telLats))
	}
	for i := range bareLats {
		if bareLats[i] != telLats[i] {
			t.Fatalf("delivery %d latency %g vs %g", i, bareLats[i], telLats[i])
		}
	}
	if bareCounters["packets_delivered"] == 0 {
		t.Fatal("run delivered nothing; determinism check is vacuous")
	}
}

// TestMetricsEndpoint drives a fully instrumented run and scrapes the live
// HTTP endpoint, checking the Prometheus text format and the presence of the
// core metric families.
func TestMetricsEndpoint(t *testing.T) {
	sim := newWedgeSim(t, 3)
	sim.EnableTelemetry(disha.TelemetryOptions{SampleEvery: 100})
	addr, shutdown, err := sim.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	sim.Run(2000)

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"disha_flits_forwarded_total",
		"disha_blocked_headers",
		"disha_token_transit_cycles",
		"disha_packets_delivered_total",
		"disha_vc_blocked_cycles_total",
	} {
		if !strings.Contains(text, "# TYPE "+want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}

	// pprof must be wired on the same mux.
	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint status %d", resp.StatusCode)
	}
}

// TestFlightRecorderCapturesDeadlock wedges the network and checks the
// recorder produced at least one snapshot with history and a wait-for-graph,
// and that the JSONL stream carries it.
func TestFlightRecorderCapturesDeadlock(t *testing.T) {
	var jsonl bytes.Buffer
	tw := disha.NewTelemetryWriter(&jsonl)
	sim := newWedgeSim(t, 12)
	tel := sim.EnableTelemetry(disha.TelemetryOptions{
		SampleEvery: 50, FlightDepth: 48, SnapshotCooldown: 200, Writer: tw,
	})
	sim.Run(4000)
	if sim.Counters().TimeoutEvents == 0 {
		t.Skip("no deadlock presumed at this seed")
	}
	snaps := tel.Recorder.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("timeouts occurred but no flight-recorder snapshot")
	}
	s := snaps[0]
	if len(s.Frames) == 0 {
		t.Fatal("snapshot carries no frames")
	}
	if s.Frames[len(s.Frames)-1].Cycle != s.Cycle {
		t.Fatalf("last frame cycle %d != snapshot cycle %d", s.Frames[len(s.Frames)-1].Cycle, s.Cycle)
	}
	if len(s.WFG) == 0 {
		t.Fatal("snapshot carries no wait-for-graph")
	}

	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	text := jsonl.String()
	if !strings.Contains(text, `"type":"snapshot"`) {
		t.Fatal("JSONL stream has no snapshot line")
	}
	if !strings.Contains(text, `"type":"sample"`) {
		t.Fatal("JSONL stream has no sample lines")
	}
}

// BenchmarkCountersSnapshot measures Network.Counters() — it is called per
// delivered packet by harness hot loops and is memoized per cycle, so
// repeated snapshots within a cycle must be cheap.
func BenchmarkCountersSnapshot(b *testing.B) {
	sim := newWedgeSim(b, 1)
	sim.Run(1000)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		c := sim.Counters()
		sink += c.PacketsDelivered
	}
	_ = sink
}

// BenchmarkTelemetryOverhead compares a bare run against one with sampling
// every 100 cycles and the flight recorder armed — the acceptance envelope
// is < 5% regression.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, instrument bool) {
		for i := 0; i < b.N; i++ {
			sim := newWedgeSim(b, uint64(i+1))
			if instrument {
				sim.EnableTelemetry(disha.TelemetryOptions{SampleEvery: 100})
			}
			sim.Run(2000)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
