// Benchmarks regenerating the paper's evaluation, one per table/figure.
//
// Each figure benchmark runs a representative point of the corresponding
// experiment on an 8x8 torus with shortened windows (the full 16x16 sweeps
// are produced by cmd/disha-sweep) and reports the quantities the paper
// plots as custom metrics: cycles of latency, normalized throughput, and
// token seizures per delivered packet. The ablation benchmarks cover the
// design choices called out in DESIGN.md (Deadlock Buffer depth, token
// speed, selection function, crossbar allocation policy, VC count).
package disha_test

import (
	"fmt"
	"testing"

	disha "repro"
)

// benchPoint runs warmup+measure cycles of one configuration and reports
// figure-style metrics.
func benchPoint(b *testing.B, cfg disha.SimConfig, warmup, measure int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		sim, err := disha.NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sim.Run(warmup)
		start := sim.Counters()
		var lat disha.LatencyCollector
		sim.OnDeliver(func(p *disha.Packet) { lat.Add(float64(p.Age())) })
		sim.Run(measure)
		end := sim.Counters()

		delivered := end.PacketsDelivered - start.PacketsDelivered
		if delivered == 0 {
			b.Fatal("benchmark point delivered nothing")
		}
		flits := end.FlitsDelivered - start.FlitsDelivered
		nodes := float64(cfg.Topo.Nodes())
		// Normalized against uniform capacity of a 2D torus: 4 channels per
		// node over the pattern-independent mean distance is close enough
		// for a benchmark metric; exact normalization lives in the harness.
		accepted := float64(flits) / (float64(measure) * nodes)
		b.ReportMetric(lat.Mean(), "latency-cycles")
		b.ReportMetric(accepted, "flits/node/cycle")
		b.ReportMetric(float64(end.TokenSeizures-start.TokenSeizures)/float64(delivered), "seizures/pkt")
	}
}

func torus8() disha.Topology { return disha.Torus(8, 8) }

// BenchmarkFig3aDeadlockFrequency measures the deadlock characterization
// experiment: Disha M=3 under uniform traffic near saturation with the
// paper's two contrast time-outs. The seizures/pkt metric is Figure 3a's
// y-axis (the paper reports < 2%).
func BenchmarkFig3aDeadlockFrequency(b *testing.B) {
	for _, tout := range []disha.Cycle{4, 64} {
		b.Run(map[disha.Cycle]string{4: "tout4", 64: "tout64"}[tout], func(b *testing.B) {
			topo := torus8()
			benchPoint(b, disha.SimConfig{
				Topo: topo, Algorithm: disha.DishaRouting(3), Pattern: disha.Uniform(topo),
				LoadRate: 0.6, MsgLen: 16, Timeout: tout,
			}, 1000, 3000)
		})
	}
}

// BenchmarkFig3bTimeoutSelection sweeps T_out at a fixed load (Figure 3b's
// latency-vs-timeout tradeoff).
func BenchmarkFig3bTimeoutSelection(b *testing.B) {
	for _, tc := range []struct {
		name string
		tout disha.Cycle
	}{{"tout4", 4}, {"tout8", 8}, {"tout16", 16}, {"tout64", 64}} {
		b.Run(tc.name, func(b *testing.B) {
			topo := torus8()
			benchPoint(b, disha.SimConfig{
				Topo: topo, Algorithm: disha.DishaRouting(3), Pattern: disha.Uniform(topo),
				LoadRate: 0.5, MsgLen: 16, Timeout: tc.tout,
			}, 1000, 3000)
		})
	}
}

// comparisonBench runs the Figures 4-6 scheme set under one traffic pattern.
func comparisonBench(b *testing.B, pattern func(disha.Graph) (disha.Pattern, error), load float64) {
	b.Helper()
	type curve struct {
		name     string
		alg      disha.Algorithm
		sel      disha.Selection
		recovery bool
	}
	curves := []curve{
		{"disha-m0", disha.DishaRouting(0), nil, true},
		{"disha-m3", disha.DishaRouting(3), nil, true},
		{"duato", disha.Duato(), nil, false},
		{"dally-aoki", disha.DallyAoki(), disha.MinCongestionSelection(), false},
		{"turn", disha.NegativeFirst(), nil, false},
		{"dor", disha.DOR(), nil, false},
	}
	for _, c := range curves {
		c := c
		b.Run(c.name, func(b *testing.B) {
			topo := torus8()
			p, err := pattern(topo)
			if err != nil {
				b.Fatal(err)
			}
			benchPoint(b, disha.SimConfig{
				Topo: topo, Algorithm: c.alg, Selection: c.sel, Pattern: p,
				LoadRate: load, MsgLen: 16, Timeout: 8, DisableRecovery: !c.recovery,
			}, 1000, 3000)
		})
	}
}

// BenchmarkFig4Uniform is the uniform-traffic comparison (Figure 4).
func BenchmarkFig4Uniform(b *testing.B) {
	comparisonBench(b, func(t disha.Graph) (disha.Pattern, error) { return disha.Uniform(t), nil }, 0.5)
}

// BenchmarkFig5BitReversal is the bit-reversal comparison (Figure 5).
func BenchmarkFig5BitReversal(b *testing.B) {
	comparisonBench(b, disha.BitReversal, 0.4)
}

// BenchmarkFig6Transpose is the matrix-transpose comparison (Figure 6).
func BenchmarkFig6Transpose(b *testing.B) {
	comparisonBench(b, func(g disha.Graph) (disha.Pattern, error) { return disha.Transpose(g.(disha.Topology)) }, 0.4)
}

// BenchmarkFig7HotSpot is the hot-spot comparison (Figure 7): 5% of all
// traffic to one node; the paper's early-saturation case where misrouting
// helps.
func BenchmarkFig7HotSpot(b *testing.B) {
	comparisonBench(b, func(g disha.Graph) (disha.Pattern, error) {
		t := g.(disha.Topology)
		return disha.HotSpot(disha.Uniform(t), t.NodeAt(disha.Coord{3, 5}), 0.05), nil
	}, 0.2)
}

// BenchmarkCostModelTable evaluates the Section 3.4 cost table (router
// data-through delay under Chien's model).
func BenchmarkCostModelTable(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		rows := disha.PaperCostTable()
		sink += rows[1].Total - rows[0].Total
	}
	rows := disha.PaperCostTable()
	b.ReportMetric(rows[0].Total, "star-ns")
	b.ReportMetric(rows[1].Total, "disha-ns")
	_ = sink
}

// --- Ablations (design choices called out in DESIGN.md) ------------------------

func ablationConfig(topo disha.Topology) disha.SimConfig {
	return disha.SimConfig{
		Topo: topo, Algorithm: disha.DishaRouting(0), Pattern: disha.Uniform(topo),
		LoadRate: 0.6, MsgLen: 16, Timeout: 8,
	}
}

// BenchmarkAblationTokenSpeed varies how fast the recovery Token circulates.
func BenchmarkAblationTokenSpeed(b *testing.B) {
	for _, hops := range []int{1, 4, 16, 64} {
		b.Run(map[int]string{1: "hops1", 4: "hops4", 16: "hops16", 64: "hops64"}[hops], func(b *testing.B) {
			topo := torus8()
			cfg := ablationConfig(topo)
			cfg.TokenHopsPerCycle = hops
			benchPoint(b, cfg, 1000, 3000)
		})
	}
}

// BenchmarkAblationSelection compares the selection functions the paper
// discusses (random vs minimum-congestion).
func BenchmarkAblationSelection(b *testing.B) {
	for _, tc := range []struct {
		name string
		sel  disha.Selection
	}{{"random", disha.RandomSelection()}, {"min-congestion", disha.MinCongestionSelection()}} {
		b.Run(tc.name, func(b *testing.B) {
			topo := torus8()
			cfg := ablationConfig(topo)
			cfg.Selection = tc.sel
			benchPoint(b, cfg, 1000, 3000)
		})
	}
}

// BenchmarkAblationVCs varies the virtual channel count: the paper argues
// VCs should serve flow control only, with adaptivity independent of them.
func BenchmarkAblationVCs(b *testing.B) {
	for _, vcs := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "vc1", 2: "vc2", 4: "vc4", 8: "vc8"}[vcs], func(b *testing.B) {
			topo := torus8()
			cfg := ablationConfig(topo)
			cfg.VCs = vcs
			benchPoint(b, cfg, 1000, 3000)
		})
	}
}

// BenchmarkAblationBufferDepth varies edge buffer depth (the paper uses
// shallow depth-2 buffers to keep routers fast).
func BenchmarkAblationBufferDepth(b *testing.B) {
	for _, d := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "depth1", 2: "depth2", 4: "depth4", 8: "depth8"}[d], func(b *testing.B) {
			topo := torus8()
			cfg := ablationConfig(topo)
			cfg.BufferDepth = d
			benchPoint(b, cfg, 1000, 3000)
		})
	}
}

// BenchmarkAblationCrossbarPolicy compares flit-by-flit against
// packet-by-packet crossbar allocation (Section 3.3).
func BenchmarkAblationCrossbarPolicy(b *testing.B) {
	for _, tc := range []struct {
		name  string
		alloc disha.AllocPolicy
	}{{"flit-by-flit", disha.FlitByFlit}, {"packet-by-packet", disha.PacketByPacket}} {
		b.Run(tc.name, func(b *testing.B) {
			topo := torus8()
			cfg := ablationConfig(topo)
			cfg.Alloc = tc.alloc
			benchPoint(b, cfg, 1000, 3000)
		})
	}
}

// BenchmarkAblationDuatoEscapePolicy brackets baseline strength: liberal
// escape (return to adaptive allowed, as the DISHA paper describes) versus
// strict permanent escape (how weaker 1995-era implementations behaved).
func BenchmarkAblationDuatoEscapePolicy(b *testing.B) {
	for _, tc := range []struct {
		name string
		alg  disha.Algorithm
	}{{"liberal", disha.Duato()}, {"strict", disha.DuatoStrict()}} {
		b.Run(tc.name, func(b *testing.B) {
			topo := torus8()
			benchPoint(b, disha.SimConfig{
				Topo: topo, Algorithm: tc.alg, Pattern: disha.Uniform(topo),
				LoadRate: 0.6, MsgLen: 16, DisableRecovery: true,
			}, 1000, 3000)
		})
	}
}

// BenchmarkSimulatorCycleRate measures raw simulation speed: router-cycles
// per second at a loaded steady state (for capacity planning of sweeps).
func BenchmarkSimulatorCycleRate(b *testing.B) {
	topo := disha.Torus(16, 16)
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo: topo, Algorithm: disha.DishaRouting(0), Pattern: disha.Uniform(topo),
		LoadRate: 0.5, MsgLen: 32, Timeout: 8, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	sim.Run(2000) // steady state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
	b.ReportMetric(float64(topo.Nodes()), "routers/step")
}

// BenchmarkAblationRecoveryMode answers the paper's future-work question —
// "how much performance is enhanced with concurrent recovery" — by running
// the same deadlock-prone configuration (1 VC, depth-1 buffers, saturating
// load) under token-serialized sequential recovery and under token-free
// concurrent recovery.
func BenchmarkAblationRecoveryMode(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode disha.RecoveryMode
	}{{"sequential", disha.RecoverySequential}, {"concurrent", disha.RecoveryConcurrent}, {"abort-retry", disha.RecoveryAbortRetry}} {
		b.Run(tc.name, func(b *testing.B) {
			topo := torus8()
			benchPoint(b, disha.SimConfig{
				Topo: topo, Algorithm: disha.DishaRouting(0), Pattern: disha.Uniform(topo),
				LoadRate: 0.8, MsgLen: 16, VCs: 1, BufferDepth: 1, Timeout: 8,
				Recovery: tc.mode,
			}, 1000, 3000)
		})
	}
}

// BenchmarkAblationInjectionThrottle measures the injection-limitation
// scheme the paper cites as a deadlock-frequency reducer.
func BenchmarkAblationInjectionThrottle(b *testing.B) {
	for _, tc := range []struct {
		name     string
		throttle int
	}{{"unthrottled", 0}, {"throttle4", 4}, {"throttle2", 2}} {
		b.Run(tc.name, func(b *testing.B) {
			topo := torus8()
			cfg := ablationConfig(topo)
			cfg.InjectionThrottle = tc.throttle
			cfg.LoadRate = 0.8
			benchPoint(b, cfg, 1000, 3000)
		})
	}
}

// BenchmarkAblationReceptionChannels measures the other lever the paper
// names: draining packets faster at the destination.
func BenchmarkAblationReceptionChannels(b *testing.B) {
	for _, rx := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "rx1", 2: "rx2", 4: "rx4"}[rx], func(b *testing.B) {
			topo := torus8()
			cfg := ablationConfig(topo)
			cfg.ReceptionChannels = rx
			benchPoint(b, cfg, 1000, 3000)
		})
	}
}

// BenchmarkAblationBurstyTraffic tests the conclusions' claim that Disha
// "performs well under bursty traffic": the same long-run load delivered
// smoothly vs in on/off bursts, for Disha and Duato.
func BenchmarkAblationBurstyTraffic(b *testing.B) {
	type cse struct {
		name  string
		alg   disha.Algorithm
		burst bool
	}
	for _, c := range []cse{
		{"disha-smooth", disha.DishaRouting(0), false},
		{"disha-bursty", disha.DishaRouting(0), true},
		{"duato-smooth", disha.Duato(), false},
		{"duato-bursty", disha.Duato(), true},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			topo := torus8()
			cfg := disha.SimConfig{
				Topo: topo, Algorithm: c.alg, Pattern: disha.Uniform(topo),
				LoadRate: 0.4, MsgLen: 16,
			}
			if c.alg.Name() == "disha-m0" {
				cfg.Timeout = 8
			} else {
				cfg.DisableRecovery = true
			}
			if c.burst {
				cfg.Burst = disha.BurstConfig{MeanBurst: 50, MeanIdle: 150}
			}
			benchPoint(b, cfg, 1000, 3000)
		})
	}
}

// BenchmarkAblationFaultTolerance measures Disha on a torus with 0, 2 and 4
// failed links (the paper's fault-tolerance capability claim): throughput
// degrades gracefully instead of wedging.
func BenchmarkAblationFaultTolerance(b *testing.B) {
	for _, faults := range []int{0, 2, 4} {
		name := map[int]string{0: "faults0", 2: "faults2", 4: "faults4"}[faults]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				topo := torus8()
				sim, err := disha.NewSimulator(disha.SimConfig{
					Topo: topo, Algorithm: disha.DishaRouting(3), Pattern: disha.Uniform(topo),
					LoadRate: 0.4, MsgLen: 16, Timeout: 8, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				for f := 0; f < faults; f++ {
					node := disha.Node((f*13 + 5) % topo.Nodes())
					if err := sim.FailLink(node, f%topo.Degree()); err != nil {
						b.Fatal(err)
					}
				}
				sim.Run(1000)
				start := sim.Counters()
				sim.Run(3000)
				end := sim.Counters()
				flits := end.FlitsDelivered - start.FlitsDelivered
				b.ReportMetric(float64(flits)/(3000*float64(topo.Nodes())), "flits/node/cycle")
				b.ReportMetric(float64(end.MisrouteHops-start.MisrouteHops), "misroute-hops")
			}
		})
	}
}

// stepBenchAt measures steady-state Step cost on a torus at the given
// offered load, kernel shard count (0 = serial kernel), active-set setting
// and scan path (refScan = retained reference path instead of the optimized
// struct-of-arrays scans). b.ReportAllocs surfaces the zero-allocation
// steady-state property alongside ns/cycle.
func stepBenchAt(b *testing.B, radix, shards int, load float64, activeSet, refScan bool) {
	b.Helper()
	topo := disha.Torus(radix, radix)
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo: topo, Algorithm: disha.DishaRouting(0), Pattern: disha.Uniform(topo),
		LoadRate: load, MsgLen: 32, Timeout: 8, Seed: 1, Shards: shards,
		DisableActiveSet: !activeSet,
		ReferenceScan:    refScan,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sim.Close)
	sim.Run(2000) // steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
	b.ReportMetric(float64(topo.Nodes()), "routers/step")
}

// stepBenchGrid runs one kernel variant over the full load × size grid. The
// sub-benchmark names (torus8/load0.5, ...) are load-bearing: CI's benchgate
// gates reference them (see .github/workflows/ci.yml, kernel job).
func stepBenchGrid(b *testing.B, bench func(b *testing.B, radix int, load float64)) {
	b.Helper()
	for _, radix := range []int{8, 16} {
		radix := radix
		b.Run(fmt.Sprintf("torus%d", radix), func(b *testing.B) {
			for _, load := range []float64{0.1, 0.5, 0.9} {
				load := load
				b.Run(fmt.Sprintf("load%.1f", load), func(b *testing.B) { bench(b, radix, load) })
			}
		})
	}
}

// stepBenchProfiled is stepBenchAt with the telemetry stack (hub, episode
// tracker, flight recorder) attached and the kernel phase profiler sampling
// every profileEvery cycles (0 = profiler off). The on/off twins isolate
// the profiler's own Step overhead from the base telemetry cost; CI gates
// their ratio.
func stepBenchProfiled(b *testing.B, radix, shards int, load float64, activeSet bool, profileEvery int) {
	b.Helper()
	topo := disha.Torus(radix, radix)
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo: topo, Algorithm: disha.DishaRouting(0), Pattern: disha.Uniform(topo),
		LoadRate: load, MsgLen: 32, Timeout: 8, Seed: 1, Shards: shards,
		DisableActiveSet: !activeSet,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sim.Close)
	sim.EnableTelemetry(disha.TelemetryOptions{ProfileEvery: profileEvery})
	sim.Run(2000) // steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
	b.ReportMetric(float64(topo.Nodes()), "routers/step")
}

// BenchmarkStepSerial is the serial full-scan baseline over the load × size
// grid: the optimized struct-of-arrays scans, every router visited every
// cycle, no worker pool. CI benchgates the sharded kernel, the active-set
// scheduler and the reference scan path against these numbers.
func BenchmarkStepSerial(b *testing.B) {
	stepBenchGrid(b, func(b *testing.B, radix int, load float64) {
		stepBenchAt(b, radix, 0, load, false, false)
	})
}

// BenchmarkStepSharded runs the identical simulations under the sharded
// kernel (4 worker shards). Results are byte-identical to serial; only the
// wall time may differ.
func BenchmarkStepSharded(b *testing.B) {
	stepBenchGrid(b, func(b *testing.B, radix int, load float64) {
		stepBenchAt(b, radix, 4, load, false, false)
	})
}

// BenchmarkStepActiveSet runs the serial kernel with the active-set
// scheduler (the default in production) across the grid: at 0.1 load most
// routers sleep most cycles and the scheduler should clear >= 1.5x the full
// scan's cycles/sec; by 0.9 load nearly every router is busy and the two
// converge. Results are byte-identical to the full scan at every load; only
// the wall time differs.
func BenchmarkStepActiveSet(b *testing.B) {
	stepBenchGrid(b, func(b *testing.B, radix int, load float64) {
		stepBenchAt(b, radix, 0, load, true, false)
	})
}

// BenchmarkStepReference runs the serial full scan through the retained
// reference scan path — the faithful port of the pre-SoA per-slot walks.
// It is the denominator of the SoA speed claim: CI requires the optimized
// BenchmarkStepSerial to clear 1.15x this path's cycles/sec at 0.5 load on
// the 16x16 torus (ns/op ratio <= 0.87), with additional guard gates at 0.1
// and 0.9 load.
func BenchmarkStepReference(b *testing.B) {
	stepBenchGrid(b, func(b *testing.B, radix int, load float64) {
		stepBenchAt(b, radix, 0, load, false, true)
	})
}

// BenchmarkStepProfiled measures the kernel phase profiler's overhead at
// the BenchmarkStepActiveSet/torus16/load0.5 operating point, with the telemetry
// stack attached in both runs so the comparison isolates the profiler:
// "off" has ProfileEvery=0, "on" samples every 32nd cycle (the disha-sim
// default is 64, so this is conservative). CI's benchgate requires on to
// stay within 11% of off — i.e. profiler-on Step throughput must remain
// >= 0.9x profiler-off.
func BenchmarkStepProfiled(b *testing.B) {
	b.Run("off", func(b *testing.B) { stepBenchProfiled(b, 16, 0, 0.5, true, 0) })
	b.Run("on", func(b *testing.B) { stepBenchProfiled(b, 16, 0, 0.5, true, 32) })
}

// BenchmarkAblationAdaptiveTimeout compares fixed vs self-tuning T_out at
// an aggressively small base (the paper's "programmable T_out" future work).
func BenchmarkAblationAdaptiveTimeout(b *testing.B) {
	for _, tc := range []struct {
		name     string
		adaptive bool
	}{{"fixed-t2", false}, {"adaptive-t2", true}} {
		b.Run(tc.name, func(b *testing.B) {
			topo := torus8()
			benchPoint(b, disha.SimConfig{
				Topo: topo, Algorithm: disha.DishaRouting(0), Pattern: disha.Uniform(topo),
				LoadRate: 0.6, MsgLen: 16, Timeout: 2, AdaptiveTimeout: tc.adaptive,
			}, 1000, 3000)
		})
	}
}
