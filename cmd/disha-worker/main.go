// Command disha-worker is a fleet worker: it registers with a disha-serve
// coordinator running in -fleet mode, leases sweep points, executes them
// through the deterministic harness, and uploads results (streaming
// mid-point checkpoint blobs so a killed worker's points resume elsewhere).
//
//	disha-worker -coordinator http://host:8080/fleet
//	disha-worker -coordinator http://host:8080/fleet -parallel 4 -id rack3-07
//
// Determinism makes the fleet safe: a point's result is a pure function of
// its job key and derived seed, so it does not matter which worker runs it
// or how often the coordinator re-dispatches it — every execution produces
// identical bytes, and the worker verifies the coordinator's key and seed
// against its own derivation before running anything.
//
// On SIGINT/SIGTERM the worker drains: points already executing finish and
// upload, no new leases are taken, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/fabric"
	"repro/internal/telemetry"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator fleet URL, e.g. http://host:8080/fleet (required)")
		id          = flag.String("id", "", "worker identity, unique within the fleet (default hostname-pid)")
		parallel    = flag.Int("parallel", 1, "points to execute concurrently")
		ckptDir     = flag.String("checkpoint-dir", "", "local directory for mid-point checkpoint files (default: per-run temp dir)")
		shards      = flag.Int("shards", 0, "intra-point parallel kernel shards (0/1 = serial; results identical either way)")
		version     = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(telemetry.Build().String())
		return
	}
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "disha-worker: -coordinator is required (e.g. http://host:8080/fleet)")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "disha-worker: ", log.LstdFlags)
	w := fabric.NewWorker(fabric.WorkerOptions{
		Coordinator:   *coordinator,
		ID:            *id,
		Parallel:      *parallel,
		CheckpointDir: *ckptDir,
		Shards:        *shards,
		Logf:          logger.Printf,
	})

	// SIGINT/SIGTERM cancels the lease loops; points already executing
	// finish and upload before Run returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("drained, exiting")
}
