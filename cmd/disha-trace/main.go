// Command disha-trace loads a JSONL telemetry dump produced by
// disha-sim -trace-out and prints a recovery post-mortem: what the run was,
// how often deadlock was presumed, how each recovery episode unfolded
// (timeout -> Token capture -> Deadlock Buffer -> Token release -> delivery),
// what the flight recorder saw around each presumption, and how the sampled
// congestion series evolved.
//
// Usage:
//
//	disha-trace run.jsonl             # full post-mortem
//	disha-trace -pkt 1234 run.jsonl   # one packet's event history
//	disha-trace -episodes 20 run.jsonl
//	disha-trace episodes run.jsonl    # span-based episode timelines +
//	                                  # misprediction-rate summary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "episodes" {
		runEpisodes(os.Args[2:])
		return
	}
	var (
		pkt      = flag.Int64("pkt", -1, "print the event history of one packet and exit")
		episodes = flag.Int("episodes", 10, "max recovery episodes to print")
		snaps    = flag.Int("snapshots", 4, "max flight-recorder snapshots to detail")
		version  = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(telemetry.Build().String())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: disha-trace [flags] <trace.jsonl>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	fail(err)
	lines, err := telemetry.ReadJSONL(f)
	f.Close()
	fail(err)

	d := split(lines)

	if *pkt >= 0 {
		printPacket(d, *pkt)
		return
	}

	printMeta(d)
	printEventTotals(d)
	printEpisodes(d, *episodes)
	printSnapshots(d, *snaps)
	printSeries(d)
	printCounters(d)
}

// dump is the trace file split by record type, in file order.
type dump struct {
	meta      map[string]string
	events    []telemetry.Line
	samples   []telemetry.Line
	snapshots []*telemetry.Snapshot
	spans     []*telemetry.EpisodeSpan
	counters  map[string]int64
	lastCycle int64
}

func split(lines []telemetry.Line) *dump {
	d := &dump{}
	for _, l := range lines {
		if l.Cycle > d.lastCycle {
			d.lastCycle = l.Cycle
		}
		switch l.Type {
		case "meta":
			d.meta = l.Meta
		case "event":
			d.events = append(d.events, l)
		case "sample":
			d.samples = append(d.samples, l)
		case "snapshot":
			if l.Snapshot != nil {
				d.snapshots = append(d.snapshots, l.Snapshot)
			}
		case "span":
			if l.Span != nil {
				d.spans = append(d.spans, l.Span)
			}
		case "counters":
			d.counters = l.Counters
		}
	}
	return d
}

// runEpisodes is the `episodes` subcommand: it renders the structured
// recovery-episode spans the tracker emitted — one timeline per episode,
// labeled true-cycle vs false-presumption — plus a misprediction-rate
// summary and a cross-check of the labels against the flight recorder's
// TrueDeadlock verdicts.
func runEpisodes(args []string) {
	fs := flag.NewFlagSet("episodes", flag.ExitOnError)
	limit := fs.Int("limit", 20, "max episode timelines to print")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: disha-trace episodes [-limit N] <trace.jsonl>")
		fs.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	fail(err)
	lines, err := telemetry.ReadJSONL(f)
	f.Close()
	fail(err)
	d := split(lines)

	fmt.Printf("recovery-episode spans (%d)\n", len(d.spans))
	if len(d.spans) == 0 {
		fmt.Println("  (none — run disha-sim with -trace-out and a deadlock-prone config)")
		return
	}
	spans := append([]*telemetry.EpisodeSpan(nil), d.spans...)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })

	trueN, memberN := 0, 0
	outcomes := map[string]int{}
	var resolveSum, resolveN, dbSum, dbN int64
	for _, s := range spans {
		if s.TrueCycle {
			trueN++
		}
		if s.Member {
			memberN++
		}
		outcomes[s.Outcome]++
		if s.Outcome != "open" {
			resolveSum += s.End - s.Start
			resolveN++
		}
		if s.Recover >= 0 && s.Outcome == "delivered" {
			dbSum += s.End - s.Recover
			dbN++
		}
	}
	falseN := len(spans) - trueN
	fmt.Printf("  verdicts: %d true-cycle, %d false-presumption (misprediction rate %.1f%%); %d presumed packets in a deadlocked set\n",
		trueN, falseN, 100*float64(falseN)/float64(len(spans)), memberN)
	fmt.Printf("  outcomes: %d delivered, %d killed, %d open at end of run\n",
		outcomes["delivered"], outcomes["killed"], outcomes["open"])
	if resolveN > 0 {
		fmt.Printf("  mean time-to-resolve %d cycles", resolveSum/resolveN)
		if dbN > 0 {
			fmt.Printf("; mean time-in-DB %d cycles over %d recovered deliveries", dbSum/dbN, dbN)
		}
		fmt.Println()
	}

	fmt.Println("\ntimelines")
	for i, s := range spans {
		if i >= *limit {
			fmt.Printf("  ... %d more (raise -limit)\n", len(spans)-*limit)
			break
		}
		fmt.Println("  " + spanTimeline(s))
	}

	printAgreement(d, spans)
}

// spanTimeline renders one span as a single arrow-chain line.
func spanTimeline(s *telemetry.EpisodeSpan) string {
	verdict := "false-presumption"
	if s.TrueCycle {
		verdict = "true-cycle"
		if s.Member {
			verdict += "/member"
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "#%-4d pkt %-6d %-18s presumed@%d node=%d", s.Seq, s.Pkt, verdict, s.Start, s.Node)
	if s.Capture >= 0 {
		fmt.Fprintf(&sb, " -> token@%d", s.Capture)
	}
	if s.Recover >= 0 {
		fmt.Fprintf(&sb, " -> db-lane@%d", s.Recover)
	}
	if s.Release >= 0 {
		fmt.Fprintf(&sb, " -> release@%d", s.Release)
	}
	switch s.Outcome {
	case "delivered":
		fmt.Fprintf(&sb, " -> delivered@%d (+%d cycles)", s.End, s.End-s.Start)
	case "killed":
		fmt.Fprintf(&sb, " -> killed@%d (+%d cycles)", s.End, s.End-s.Start)
	default:
		fmt.Fprintf(&sb, " -> open at end of run (@%d)", s.End)
	}
	return sb.String()
}

// printAgreement cross-checks the spans' true-cycle labels against the
// flight recorder: a snapshot's trigger packet opened its episode the same
// cycle, and both verdicts come from the same wait-for-graph analysis, so
// they must agree. Disagreement means the span labels can't be trusted.
func printAgreement(d *dump, spans []*telemetry.EpisodeSpan) {
	if len(d.snapshots) == 0 {
		return
	}
	bySeq := map[[2]int64]*telemetry.EpisodeSpan{}
	for _, s := range spans {
		bySeq[[2]int64{s.Start, s.Pkt}] = s
	}
	matched, agreed := 0, 0
	for _, snap := range d.snapshots {
		s, ok := bySeq[[2]int64{snap.Cycle, snap.TriggerPkt}]
		if !ok {
			continue
		}
		matched++
		if s.TrueCycle == snap.TrueDeadlock {
			agreed++
		}
	}
	fmt.Printf("\nflight-recorder agreement: %d/%d trigger spans match the snapshot TrueDeadlock verdict\n",
		agreed, matched)
	if agreed != matched {
		fmt.Println("  WARNING: span labels disagree with flight-recorder verdicts")
	}
}

func printMeta(d *dump) {
	fmt.Println("run")
	if len(d.meta) == 0 {
		fmt.Println("  (no meta record)")
		return
	}
	keys := make([]string, 0, len(d.meta))
	for k := range d.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-10s %s\n", k, d.meta[k])
	}
}

func printEventTotals(d *dump) {
	fmt.Println("\nevents")
	if len(d.events) == 0 {
		fmt.Println("  (none recorded)")
		return
	}
	counts := map[string]int{}
	for _, e := range d.events {
		counts[e.Kind]++
	}
	// Canonical kind order (lifecycle first, then recovery machinery).
	order := trace.KindStrings()
	seen := map[string]bool{}
	for _, k := range order {
		if counts[k] > 0 {
			fmt.Printf("  %-14s %d\n", k, counts[k])
		}
		seen[k] = true
	}
	for k, c := range counts {
		if !seen[k] {
			fmt.Printf("  %-14s %d\n", k, c)
		}
	}
}

// episode is one packet's recovery story, reconstructed from its events.
type episode struct {
	pkt                                               int64
	node                                              int
	timeout, capture, recover, release, deliver, kill int64
}

// buildEpisodes correlates per-packet events: the first timeout opens an
// episode; capture/recover/release/deliver/kill cycles fill it in.
func buildEpisodes(d *dump) []*episode {
	byPkt := map[int64]*episode{}
	var order []*episode
	for _, e := range d.events {
		ep := byPkt[e.Pkt]
		switch e.Kind {
		case "timeout":
			if ep == nil {
				ep = &episode{pkt: e.Pkt, node: e.Node, timeout: e.Cycle,
					capture: -1, recover: -1, release: -1, deliver: -1, kill: -1}
				byPkt[e.Pkt] = ep
				order = append(order, ep)
			}
		case "token-capture":
			if ep != nil && ep.capture < 0 {
				ep.capture = e.Cycle
			}
		case "recover":
			if ep != nil && ep.recover < 0 {
				ep.recover = e.Cycle
				ep.node = e.Node
			}
		case "token-release":
			if ep != nil && ep.release < 0 {
				ep.release = e.Cycle
			}
		case "deliver":
			if ep != nil && ep.deliver < 0 {
				ep.deliver = e.Cycle
			}
		case "kill":
			if ep != nil && ep.kill < 0 {
				ep.kill = e.Cycle
			}
		}
	}
	return order
}

func printEpisodes(d *dump, max int) {
	eps := buildEpisodes(d)
	fmt.Printf("\nrecovery episodes (%d presumed-deadlocked packets)\n", len(eps))
	if len(eps) == 0 {
		return
	}
	recovered, resolved := 0, 0
	var totalToDeliver, delivered int64
	for _, ep := range eps {
		if ep.recover >= 0 {
			recovered++
		}
		if ep.deliver >= 0 {
			resolved++
			totalToDeliver += ep.deliver - ep.timeout
			delivered++
		}
	}
	fmt.Printf("  recovered via DB lane: %d, delivered after timeout: %d", recovered, resolved)
	if delivered > 0 {
		fmt.Printf(" (mean timeout->deliver %d cycles)", totalToDeliver/delivered)
	}
	fmt.Println()
	for i, ep := range eps {
		if i >= max {
			fmt.Printf("  ... %d more (raise -episodes)\n", len(eps)-max)
			break
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "  pkt %-6d timeout@%d node=%d", ep.pkt, ep.timeout, ep.node)
		if ep.capture >= 0 {
			fmt.Fprintf(&sb, " -> token-capture@%d", ep.capture)
		}
		if ep.recover >= 0 {
			fmt.Fprintf(&sb, " -> db-lane@%d", ep.recover)
		}
		if ep.release >= 0 {
			fmt.Fprintf(&sb, " -> token-release@%d", ep.release)
		}
		if ep.kill >= 0 {
			fmt.Fprintf(&sb, " -> killed@%d", ep.kill)
		}
		switch {
		case ep.deliver >= 0:
			fmt.Fprintf(&sb, " -> delivered@%d (+%d cycles)", ep.deliver, ep.deliver-ep.timeout)
		case ep.kill >= 0:
			// killed: retransmitted under a fresh packet ID
		default:
			sb.WriteString(" -> unresolved at end of trace")
		}
		fmt.Println(sb.String())
	}
}

func printSnapshots(d *dump, max int) {
	fmt.Printf("\nflight-recorder snapshots (%d)\n", len(d.snapshots))
	for i, s := range d.snapshots {
		if i >= max {
			fmt.Printf("  ... %d more (raise -snapshots)\n", len(d.snapshots)-max)
			break
		}
		deadlocked := 0
		for _, n := range s.WFG {
			if n.Deadlocked {
				deadlocked++
			}
		}
		fmt.Printf("  @%d trigger pkt %d at node %d: %d blocked headers, %d in a true deadlock (true_deadlock=%v)\n",
			s.Cycle, s.TriggerPkt, s.TriggerNode, len(s.WFG), deadlocked, s.TrueDeadlock)
		if len(s.Frames) > 0 {
			fmt.Printf("    %d frames (%d..%d); routers saturated first: %s\n",
				len(s.Frames), s.Frames[0].Cycle, s.Frames[len(s.Frames)-1].Cycle,
				hottestRouters(s.Frames, 5))
		}
	}
}

// hottestRouters ranks routers by cumulative blocked-header count over the
// retained frames — the ones that congested first and hardest.
func hottestRouters(frames []telemetry.Frame, top int) string {
	blocked := map[int32]int64{}
	first := map[int32]int64{}
	for _, fr := range frames {
		for _, r := range fr.Routers {
			blocked[r.Node] += int64(r.Blocked)
			if _, ok := first[r.Node]; !ok {
				first[r.Node] = fr.Cycle
			}
		}
	}
	type rank struct {
		node  int32
		score int64
	}
	var ranks []rank
	for n, s := range blocked {
		ranks = append(ranks, rank{n, s})
	}
	sort.Slice(ranks, func(i, j int) bool {
		if ranks[i].score != ranks[j].score {
			return ranks[i].score > ranks[j].score
		}
		return first[ranks[i].node] < first[ranks[j].node]
	})
	if len(ranks) > top {
		ranks = ranks[:top]
	}
	parts := make([]string, len(ranks))
	for i, r := range ranks {
		parts[i] = fmt.Sprintf("node %d (blocked %d cycles, from @%d)", r.node, r.score, first[r.node])
	}
	if len(parts) == 0 {
		return "(none blocked)"
	}
	return strings.Join(parts, ", ")
}

func printSeries(d *dump) {
	fmt.Println("\nsampled series")
	if len(d.samples) == 0 {
		fmt.Println("  (none)")
		return
	}
	type agg struct {
		n                    int
		min, max, last, mean float64
	}
	byName := map[string]*agg{}
	var names []string
	for _, s := range d.samples {
		a := byName[s.Name]
		if a == nil {
			a = &agg{min: s.Value, max: s.Value}
			byName[s.Name] = a
			names = append(names, s.Name)
		}
		a.n++
		a.mean += s.Value
		a.last = s.Value
		if s.Value < a.min {
			a.min = s.Value
		}
		if s.Value > a.max {
			a.max = s.Value
		}
	}
	sort.Strings(names)
	for _, name := range names {
		a := byName[name]
		fmt.Printf("  %-28s %4d samples  min %-8g mean %-8.4g max %-8g last %g\n",
			name, a.n, a.min, a.mean/float64(a.n), a.max, a.last)
	}
}

func printCounters(d *dump) {
	if d.counters == nil {
		return
	}
	fmt.Printf("\nfinal counters @%d\n", d.lastCycle)
	keys := make([]string, 0, len(d.counters))
	for k := range d.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-18s %d\n", k, d.counters[k])
	}
}

func printPacket(d *dump, pkt int64) {
	found := false
	for _, e := range d.events {
		if e.Pkt == pkt {
			found = true
			fmt.Printf("[%6d] %-13s node=%d\n", e.Cycle, e.Kind, e.Node)
		}
	}
	if !found {
		fmt.Printf("no events for pkt %d\n", pkt)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "disha-trace:", err)
		os.Exit(1)
	}
}
