// Command disha-sweep regenerates the paper's figures: it runs the canned
// load sweeps (Figures 3a, 3b, 4, 5, 6, 7) and prints latency, throughput
// and token-seizure tables plus a saturation summary, optionally writing
// CSV files for plotting.
//
// Examples:
//
//	disha-sweep -fig 4                    # Figure 4 at paper scale (16x16)
//	disha-sweep -fig all -scale small     # everything, fast 8x8 runs
//	disha-sweep -fig 3a -csv out/         # write out/fig3a-....csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	disha "repro"
)

func main() {
	var (
		fig     = flag.String("fig", "4", "figure to reproduce: 3a, 3b, 4, 5, 6, 7, or all")
		scale   = flag.String("scale", "paper", "scale: paper (16x16, 32 flits) or small (8x8, 16 flits)")
		csvDir  = flag.String("csv", "", "directory to write CSV results into (optional)")
		warmup  = flag.Int("warmup", 0, "override warm-up cycles")
		measure = flag.Int("measure", 0, "override measurement cycles")
		seed    = flag.Uint64("seed", 0, "override seed")
		quiet   = flag.Bool("quiet", false, "suppress per-point progress")
		charts  = flag.Bool("plot", true, "render ASCII charts of each figure")
	)
	flag.Parse()

	var sc disha.ExperimentScale
	switch *scale {
	case "paper":
		sc = disha.PaperScale()
	case "small":
		sc = disha.SmallScale()
	default:
		fail(fmt.Errorf("unknown scale %q", *scale))
	}
	if *warmup > 0 {
		sc.Warmup = *warmup
	}
	if *measure > 0 {
		sc.Measure = *measure
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	names := []string{*fig}
	if *fig == "all" {
		names = []string{"3a", "3b", "4", "5", "6", "7"}
	}
	sort.Strings(names)

	for _, name := range names {
		spec := disha.Figure(name, sc)
		if spec == nil {
			fail(fmt.Errorf("unknown figure %q", name))
		}
		if *warmup > 0 {
			spec.Warmup = *warmup
		}
		if *measure > 0 {
			spec.Measure = *measure
		}
		start := time.Now()
		fmt.Printf("== figure %s: %s ==\n", name, spec.Name)
		progress := func(s string) { fmt.Println("  " + s) }
		if *quiet {
			progress = nil
		}
		res, err := spec.Run(progress)
		fail(err)
		fmt.Println()
		fmt.Println(res.LatencyTable())
		fmt.Println(res.ThroughputTable())
		if *charts {
			fmt.Println(disha.PlotLatency(spec.Name+" — latency vs load", res))
			fmt.Println(disha.PlotThroughput(spec.Name+" — throughput vs load", res))
		}
		if name == "3a" {
			fmt.Println(res.SeizureTable())
		}
		fmt.Println(res.SaturationSummary())
		fmt.Printf("(%s in %v)\n\n", spec.Name, time.Since(start).Round(time.Millisecond))

		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fail(err)
			}
			path := filepath.Join(*csvDir, strings.ReplaceAll(spec.Name, "/", "-")+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", path)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "disha-sweep:", err)
		os.Exit(1)
	}
}
