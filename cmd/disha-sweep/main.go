// Command disha-sweep regenerates the paper's figures: it runs the canned
// load sweeps (Figures 3a, 3b, 4, 5, 6, 7) through the deterministic
// parallel experiment engine and prints latency, throughput and
// token-seizure tables plus a saturation summary, optionally writing CSV
// files for plotting.
//
// Points fan out across -parallel workers (default: all cores) with
// identity-keyed seeds, so the results are bit-identical to a serial run.
// -journal checkpoints completed points to a JSONL file and -resume replays
// it, so a killed sweep restarts where it left off. Adding -checkpoint-dir
// with -checkpoint-every additionally snapshots in-flight points every N
// cycles, so even the point that was running when the process died resumes
// mid-flight — with byte-identical CSV output. If any point fails the
// command prints the partial results plus a failure summary and exits
// non-zero.
//
// Examples:
//
//	disha-sweep -fig 4                                  # Figure 4, all cores
//	disha-sweep -fig all -scale small -parallel 2       # everything, 2 workers
//	disha-sweep -fig 3a -csv out/                       # write out/fig3a-....csv
//	disha-sweep -fig 4 -replicas 5                      # mean ± 95% CI over 5 seeds
//	disha-sweep -fig all -journal sweep.journal.jsonl   # checkpoint...
//	disha-sweep -fig all -journal sweep.journal.jsonl -resume   # ...and resume
//	disha-sweep -fig 4 -journal s.jsonl -checkpoint-dir ckpt -checkpoint-every 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	disha "repro"
	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/telemetry"
)

func main() {
	var (
		fig       = flag.String("fig", "4", "figure to reproduce: 3a, 3b, 4, 5, 6, 7, fullmesh, or all")
		scale     = flag.String("scale", "paper", "scale: paper (16x16, 32 flits) or small (8x8, 16 flits)")
		csvDir    = flag.String("csv", "", "directory to write CSV results into (optional)")
		warmup    = flag.Int("warmup", 0, "override warm-up cycles")
		measure   = flag.Int("measure", 0, "override measurement cycles")
		seed      = flag.Uint64("seed", 0, "override seed")
		quiet     = flag.Bool("quiet", false, "suppress per-point progress")
		charts    = flag.Bool("plot", true, "render ASCII charts of each figure")
		parallel  = flag.Int("parallel", 0, "engine workers (0 = all cores, 1 = serial; results are identical either way)")
		shards    = flag.Int("shards", 0, "kernel worker shards inside each simulation (0/1 = serial; results are identical; keep parallel*shards within the core count)")
		activeSet = flag.Bool("active-set", true, "skip fully drained routers in each simulation's step kernel (identical results; disable only for full-scan baselines)")
		replicas  = flag.Int("replicas", 1, "independent runs per point, aggregated into mean ± 95% CI")
		retries   = flag.Int("retries", 1, "extra attempts for a failing point")
		journal   = flag.String("journal", "", "JSONL checkpoint file for completed points (optional)")
		resume    = flag.Bool("resume", false, "resume from -journal instead of starting fresh")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for mid-point checkpoints; killed points resume mid-flight with byte-identical results (requires -checkpoint-every)")
		ckptN     = flag.Int("checkpoint-every", 0, "cycles between mid-point checkpoints (0 = off; requires -checkpoint-dir)")
		metrics   = flag.String("metrics-addr", "", "serve engine progress on this address at /metrics (optional, e.g. :9090)")
		chaosFile = flag.String("chaos", "", "arm this JSON chaos event-schedule on every point's network (cycles are warm-up + measurement; see CHAOS.md)")
		version   = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(telemetry.Build().String())
		return
	}

	if *resume && *journal == "" {
		fail(fmt.Errorf("-resume requires -journal"))
	}
	if (*ckptDir == "") != (*ckptN == 0) {
		fail(fmt.Errorf("-checkpoint-dir and -checkpoint-every must be set together"))
	}

	var sc disha.ExperimentScale
	switch *scale {
	case "paper":
		sc = disha.PaperScale()
	case "small":
		sc = disha.SmallScale()
	default:
		fail(fmt.Errorf("unknown scale %q", *scale))
	}
	if *warmup > 0 {
		sc.Warmup = *warmup
	}
	if *measure > 0 {
		sc.Measure = *measure
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	var chaosEvents []disha.ReconfigEvent
	if *chaosFile != "" {
		sched, err := chaos.Load(*chaosFile)
		fail(err)
		chaosEvents, err = sched.Reconfig()
		fail(err)
		fmt.Fprintf(os.Stderr, "disha-sweep: chaos campaign %q armed on every point: %d events\n",
			sched.Name, len(sched.Events))
	}

	var engineMetrics *engine.Metrics
	if *metrics != "" {
		reg := telemetry.NewRegistry()
		engineMetrics = engine.NewMetrics(reg)
		addr, shutdown, err := telemetry.Serve(*metrics, reg)
		fail(err)
		defer shutdown()
		fmt.Fprintf(os.Stderr, "serving engine progress on http://%s/metrics\n", addr)
	}

	names := []string{*fig}
	if *fig == "all" {
		names = []string{"3a", "3b", "4", "5", "6", "7"}
	}
	sort.Strings(names)

	var failedFigures []string
	totalFailed, totalPoints := 0, 0
	for _, name := range names {
		spec := disha.Figure(name, sc)
		if spec == nil {
			fail(fmt.Errorf("unknown figure %q", name))
		}
		if *warmup > 0 {
			spec.Warmup = *warmup
		}
		if *measure > 0 {
			spec.Measure = *measure
		}
		spec.Shards = *shards
		spec.DisableActiveSet = !*activeSet
		spec.Chaos = chaosEvents
		fmt.Printf("== figure %s: %s ==\n", name, spec.Name)
		progress := func(s string) { fmt.Println("  " + s) }
		if *quiet {
			progress = nil
		}
		res, report, err := spec.RunWith(disha.SweepOptions{
			Parallel:        *parallel,
			Replicas:        *replicas,
			Retries:         *retries,
			Journal:         *journal,
			Resume:          *resume || *journal != "", // a shared journal accumulates across figures
			CheckpointEvery: *ckptN,
			CheckpointDir:   *ckptDir,
			Progress:        progress,
			Metrics:         engineMetrics,
		})
		if report != nil {
			totalPoints += report.Total
			totalFailed += report.Failed()
		}
		if err != nil && res == nil {
			fail(err) // setup error: nothing to salvage
		}
		fmt.Println()
		fmt.Println(res.LatencyTable())
		fmt.Println(res.ThroughputTable())
		if *charts {
			fmt.Println(disha.PlotLatency(spec.Name+" — latency vs load", res))
			fmt.Println(disha.PlotThroughput(spec.Name+" — throughput vs load", res))
		}
		if name == "3a" {
			fmt.Println(res.SeizureTable())
		}
		fmt.Println(res.SaturationSummary())
		fmt.Printf("(%s: %s)\n\n", spec.Name, report)

		if err != nil {
			failedFigures = append(failedFigures, name)
			fmt.Fprintf(os.Stderr, "disha-sweep: figure %s incomplete: %v\n", name, err)
			for _, f := range report.Failures {
				fmt.Fprintf(os.Stderr, "  FAILED %s (attempts=%d): %s\n", f.Key, f.Attempts, firstLine(f.Err))
			}
		}

		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fail(err)
			}
			path := filepath.Join(*csvDir, strings.ReplaceAll(spec.Name, "/", "-")+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fail(err)
			}
			fmt.Println("wrote", path)
		}
	}

	if len(failedFigures) > 0 {
		fmt.Fprintf(os.Stderr, "disha-sweep: PARTIAL RESULTS: %d/%d points failed across figure(s) %s",
			totalFailed, totalPoints, strings.Join(failedFigures, ", "))
		if *journal != "" {
			fmt.Fprintf(os.Stderr, "; rerun with -resume -journal %s to retry only the failures", *journal)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "disha-sweep:", err)
		os.Exit(1)
	}
}
