// Command disha-serve runs the sweep job server: an HTTP API that accepts
// experiment specifications, executes them through the deterministic
// parallel engine, and serves status and results.
//
//	disha-serve -addr :8080
//
//	# submit Figure 4 at small scale, 3 replicas per point
//	curl -s localhost:8080/jobs -d '{"figure":"4","scale":"small","replicas":3}'
//
//	# watch it run (one NDJSON status line per tick)
//	curl -Ns 'localhost:8080/jobs/job-0001?watch=1'
//
//	# fetch the finished curves
//	curl -s localhost:8080/jobs/job-0001/result.csv
//	curl -s localhost:8080/jobs/job-0001/result.json
//
//	# engine progress + server totals (Prometheus text format)
//	curl -s localhost:8080/metrics
//
//	# liveness probe and build metadata
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/buildz
//
// With -data-dir the server persists sweep journals and mid-point
// checkpoints, so a killed server resumes a resubmitted identical request
// from where it died instead of recomputing:
//
//	disha-serve -addr :8080 -data-dir /var/lib/disha -checkpoint-every 2000
//
// With -fleet the server becomes a distributed sweep coordinator: every
// point is offered to remote disha-worker processes over /fleet/, with
// in-process execution as the fallback when no workers are live. Finished
// points land in a shared result cache keyed by content fingerprint, so
// identical sub-requests across jobs dedupe to one execution:
//
//	disha-serve -addr :8080 -fleet
//	disha-worker -coordinator http://host:8080/fleet   # on each worker box
//
// On SIGINT/SIGTERM the server drains gracefully: it stops accepting
// submissions (503 + Retry-After), lets points already executing finish,
// and aborts the rest (journaled sweeps resume on resubmission).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/jobserver"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		queue       = flag.Int("queue", 64, "maximum queued (not yet running) jobs")
		dataDir     = flag.String("data-dir", "", "persistence directory: sweep journals and mid-point checkpoints live here, so killed jobs resume when an identical request is resubmitted (empty = in-memory only)")
		ckptN       = flag.Int("checkpoint-every", 2000, "cycles between mid-point checkpoints when -data-dir is set (0 = journal-only persistence)")
		fleet       = flag.Bool("fleet", false, "coordinate a worker fleet: serve the /fleet/ API and execute sweep points on registered disha-worker processes (local fallback when none are live)")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "fleet lease time-to-live: a worker silent this long is presumed dead and its points re-dispatched")
		maxAttempts = flag.Int("max-attempts", 3, "fleet dispatch attempts per point before falling back to local execution")
		rateLimit   = flag.Float64("rate-limit", 0, "per-client POST /jobs rate limit in requests/second (0 = unlimited)")
		rateBurst   = flag.Int("rate-burst", 5, "per-client burst for -rate-limit")
		drainWait   = flag.Duration("drain-timeout", 2*time.Minute, "how long a signal-triggered drain waits for in-flight points before exiting anyway")
		version     = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(telemetry.Build().String())
		return
	}

	opts := jobserver.Options{
		QueueDepth:      *queue,
		DataDir:         *dataDir,
		CheckpointEvery: *ckptN,
		RateLimit:       *rateLimit,
		RateBurst:       *rateBurst,
	}
	var coord *fabric.Coordinator
	if *fleet {
		coord = fabric.NewCoordinator(fabric.CoordinatorOptions{
			LeaseTTL:        *leaseTTL,
			MaxAttempts:     *maxAttempts,
			CheckpointEvery: *ckptN,
		})
		defer coord.Close()
		opts.Fleet = coord
	}
	srv, err := jobserver.NewWithOptions(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "disha-serve:", err)
		os.Exit(1)
	}
	defer srv.Close()
	if coord != nil {
		// Register the fleet gauges/counters on the server's registry so
		// /metrics shows coordinator state alongside engine progress.
		coord.RegisterMetrics(srv.Registry())
	}
	// No WriteTimeout: ?watch=1 streams NDJSON for the lifetime of a job.
	// The read-side timeouts bound how long a client can hold a connection
	// open without sending a complete request (slowloris).
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	mode := "local execution"
	if *fleet {
		mode = "fleet coordination on /fleet/"
	}
	fmt.Fprintf(os.Stderr, "disha-serve: listening on %s (%s; POST /jobs, GET /jobs/{id}, GET /metrics, GET /healthz, GET /buildz)\n", *addr, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "disha-serve:", err)
			os.Exit(1)
		}
	case s := <-sig:
		// Graceful drain: refuse new submissions, let executing points
		// finish, abort the rest (journaled sweeps resume on resubmission).
		fmt.Fprintf(os.Stderr, "disha-serve: %v: draining (in-flight points finish, queue is refused)\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "disha-serve:", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "disha-serve: shutdown:", err)
		}
		fmt.Fprintln(os.Stderr, "disha-serve: drained")
	}
}
