// Command disha-serve runs the sweep job server: an HTTP API that accepts
// experiment specifications, executes them through the deterministic
// parallel engine, and serves status and results.
//
//	disha-serve -addr :8080
//
//	# submit Figure 4 at small scale, 3 replicas per point
//	curl -s localhost:8080/jobs -d '{"figure":"4","scale":"small","replicas":3}'
//
//	# watch it run (one NDJSON status line per tick)
//	curl -Ns 'localhost:8080/jobs/job-0001?watch=1'
//
//	# fetch the finished curves
//	curl -s localhost:8080/jobs/job-0001/result.csv
//	curl -s localhost:8080/jobs/job-0001/result.json
//
//	# engine progress + server totals (Prometheus text format)
//	curl -s localhost:8080/metrics
//
//	# liveness probe and build metadata
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/buildz
//
// With -data-dir the server persists sweep journals and mid-point
// checkpoints, so a killed server resumes a resubmitted identical request
// from where it died instead of recomputing:
//
//	disha-serve -addr :8080 -data-dir /var/lib/disha -checkpoint-every 2000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobserver"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		queue   = flag.Int("queue", 64, "maximum queued (not yet running) jobs")
		dataDir = flag.String("data-dir", "", "persistence directory: sweep journals and mid-point checkpoints live here, so killed jobs resume when an identical request is resubmitted (empty = in-memory only)")
		ckptN   = flag.Int("checkpoint-every", 2000, "cycles between mid-point checkpoints when -data-dir is set (0 = journal-only persistence)")
	)
	flag.Parse()

	srv, err := jobserver.NewWithOptions(jobserver.Options{
		QueueDepth:      *queue,
		DataDir:         *dataDir,
		CheckpointEvery: *ckptN,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "disha-serve:", err)
		os.Exit(1)
	}
	defer srv.Close()
	// No WriteTimeout: ?watch=1 streams NDJSON for the lifetime of a job.
	// The read-side timeouts bound how long a client can hold a connection
	// open without sending a complete request (slowloris).
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "disha-serve: listening on %s (POST /jobs, GET /jobs/{id}, GET /metrics, GET /healthz, GET /buildz)\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "disha-serve:", err)
			os.Exit(1)
		}
	case <-sig:
		// Let in-flight responses finish; queued sweeps die with the server
		// (clients resubmit — submissions are deterministic).
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "disha-serve: shutdown:", err)
		}
	}
}
