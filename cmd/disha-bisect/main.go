// Command disha-bisect finds the first cycle at which two simulator
// configurations diverge. It runs both configurations in lockstep at a
// coarse granularity, comparing full-state SHA-256 digests at each
// boundary and snapshotting the last state the two sides agreed on; when
// a boundary digest differs, it restores both sides from the last-equal
// snapshot and single-steps to isolate the exact divergent cycle.
//
// The two sides share the base flags; -a and -b apply comma-separated
// key=value overrides on top:
//
//	# when does misrouting first change global state?
//	disha-bisect -radix 8 -load 0.7 -cycles 5000 -a misroutes=0 -b misroutes=3
//
//	# prove the sharded kernel is digest-invariant (expect "identical")
//	disha-bisect -cycles 2000 -a shards=1 -b shards=4
//
//	# recovery-mode comparison at a fine granularity
//	disha-bisect -load 0.9 -a recovery=sequential -b recovery=abort-retry -granularity 64
//
// Override keys: topo, alg, misroutes, sel, traffic, load, msglen, vcs,
// depth, timeout, recovery, throttle, rx, seed, shards.
//
// Exit status: 0 if the runs are digest-identical for the full -cycles
// window, 1 if they diverge (the first divergent cycle is printed), 2 on
// usage or simulation errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	disha "repro"
	"repro/internal/chaos"
	"repro/internal/telemetry"
)

// sideConfig is one bisection side: the shared base configuration with
// that side's overrides applied.
type sideConfig struct {
	radix, dims int
	mesh        bool
	topo        string
	alg         string
	misroutes   int
	sel         string
	traffic     string
	hotFrac     float64
	load        float64
	msgLen      int
	vcs         int
	depth       int
	timeout     int
	recovery    string
	throttle    int
	rx          int
	seed        uint64
	shards      int
}

func main() {
	var (
		radix       = flag.Int("radix", 8, "nodes per dimension")
		dims        = flag.Int("dims", 2, "dimensions")
		mesh        = flag.Bool("mesh", false, "use a mesh instead of a torus")
		topoName    = flag.String("topo", "", `topology by name, e.g. "fullmesh-16" or "fattree-4" (overrides -radix/-dims/-mesh)`)
		algName     = flag.String("alg", "disha", "routing algorithm: disha, dor, turn, dally, duato, duato-strict")
		misroutes   = flag.Int("misroutes", 0, "Disha misroute bound M")
		selName     = flag.String("sel", "random", "selection function: random, min-congestion")
		trafName    = flag.String("traffic", "uniform", "pattern: uniform, bit-reversal, transpose, hotspot, complement, tornado")
		hotFrac     = flag.Float64("hotspot-fraction", 0.05, "hot-spot traffic fraction")
		load        = flag.Float64("load", 0.6, "offered load (fraction of capacity)")
		msgLen      = flag.Int("msglen", 16, "message length in flits")
		vcs         = flag.Int("vcs", 2, "virtual channels per physical channel")
		depth       = flag.Int("depth", 2, "per-VC buffer depth in flits")
		timeout     = flag.Int("timeout", 8, "deadlock time-out T_out")
		recovMode   = flag.String("recovery", "sequential", "recovery mode: sequential, concurrent, abort-retry")
		throttle    = flag.Int("throttle", 0, "max outstanding packets per node (0 = unthrottled)")
		rx          = flag.Int("rx", 1, "reception channels per node")
		seed        = flag.Uint64("seed", 1, "random seed")
		cycles      = flag.Int("cycles", 10000, "cycles to search")
		granularity = flag.Int("granularity", 256, "coarse comparison stride in cycles")
		overridesA  = flag.String("a", "", "side A overrides, e.g. alg=disha,misroutes=0")
		overridesB  = flag.String("b", "", "side B overrides, e.g. alg=disha,misroutes=3")
		chaosScript = flag.String("chaos-script", "", "arm this JSON chaos event-schedule on BOTH sides (replayed deterministically; see CHAOS.md)")
		version     = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(telemetry.Build().String())
		return
	}

	base := sideConfig{
		radix: *radix, dims: *dims, mesh: *mesh, topo: *topoName,
		alg: *algName, misroutes: *misroutes, sel: *selName,
		traffic: *trafName, hotFrac: *hotFrac, load: *load,
		msgLen: *msgLen, vcs: *vcs, depth: *depth, timeout: *timeout,
		recovery: *recovMode, throttle: *throttle, rx: *rx,
		seed: *seed, shards: 0,
	}
	if *granularity < 1 {
		fail(fmt.Errorf("-granularity must be at least 1"))
	}

	cfgA, err := applyOverrides(base, *overridesA)
	fail(err)
	cfgB, err := applyOverrides(base, *overridesB)
	fail(err)

	// A chaos schedule is armed identically on both sides — and re-armed
	// after every restore, since checkpoints deliberately do not carry the
	// pending schedule (already-applied events replay from the snapshot's
	// reconfiguration log; arming drops them as stale).
	var chaosEvents []disha.ReconfigEvent
	if *chaosScript != "" {
		sched, err := chaos.Load(*chaosScript)
		fail(err)
		chaosEvents, err = sched.Reconfig()
		fail(err)
	}
	arm := func(s *disha.Simulator) {
		if chaosEvents != nil {
			fail(s.ScheduleReconfig(chaosEvents))
		}
	}

	simA, err := buildSim(cfgA)
	fail(err)
	defer simA.Close()
	simB, err := buildSim(cfgB)
	fail(err)
	defer simB.Close()
	arm(simA)
	arm(simB)

	fmt.Printf("side A: %s\nside B: %s\n", describe(cfgA), describe(cfgB))

	if simA.Fingerprint() != simB.Fingerprint() {
		fmt.Println("divergence: cycle 0 (the configs already produce different initial state digests)")
		os.Exit(1)
	}

	// Coarse phase: march both sides in -granularity strides, keeping a
	// snapshot of the last boundary where the digests agreed.
	var lastEqualA, lastEqualB bytes.Buffer
	lastEqual := 0
	fail(simA.Snapshot(&lastEqualA))
	fail(simB.Snapshot(&lastEqualB))
	diverged := false
	for int(simA.Now()) < *cycles {
		step := *granularity
		if rest := *cycles - int(simA.Now()); rest < step {
			step = rest
		}
		simA.Run(step)
		simB.Run(step)
		if simA.Fingerprint() != simB.Fingerprint() {
			diverged = true
			break
		}
		lastEqual = int(simA.Now())
		lastEqualA.Reset()
		lastEqualB.Reset()
		fail(simA.Snapshot(&lastEqualA))
		fail(simB.Snapshot(&lastEqualB))
	}
	if !diverged {
		fmt.Printf("identical: digests agree through cycle %d\n", *cycles)
		return
	}
	fmt.Printf("coarse divergence inside (%d, %d]; restoring cycle-%d snapshots\n",
		lastEqual, int(simA.Now()), lastEqual)

	// Fine phase: rebuild both sides fresh, restore the last-equal
	// snapshots, and single-step to the first cycle whose digests differ.
	simA2, err := buildSim(cfgA)
	fail(err)
	defer simA2.Close()
	simB2, err := buildSim(cfgB)
	fail(err)
	defer simB2.Close()
	fail(simA2.Restore(bytes.NewReader(lastEqualA.Bytes())))
	fail(simB2.Restore(bytes.NewReader(lastEqualB.Bytes())))
	arm(simA2)
	arm(simB2)

	for {
		simA2.Run(1)
		simB2.Run(1)
		da, db := simA2.Fingerprint(), simB2.Fingerprint()
		if da != db {
			fmt.Printf("first divergent cycle: %d\n", int(simA2.Now()))
			fmt.Printf("  A %s\n  B %s\n", da, db)
			os.Exit(1)
		}
		if int(simA2.Now()) >= *cycles {
			// Should not happen: the coarse phase saw a divergence here.
			fail(fmt.Errorf("fine phase found no divergence before cycle %d", *cycles))
		}
	}
}

// applyOverrides parses "k=v,k=v" and lays the values over base.
func applyOverrides(base sideConfig, s string) (sideConfig, error) {
	cfg := base
	if s == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("override %q is not key=value", kv)
		}
		var err error
		switch k {
		case "topo":
			cfg.topo = v
		case "alg":
			cfg.alg = v
		case "misroutes":
			cfg.misroutes, err = strconv.Atoi(v)
		case "sel":
			cfg.sel = v
		case "traffic":
			cfg.traffic = v
		case "load":
			cfg.load, err = strconv.ParseFloat(v, 64)
		case "msglen":
			cfg.msgLen, err = strconv.Atoi(v)
		case "vcs":
			cfg.vcs, err = strconv.Atoi(v)
		case "depth":
			cfg.depth, err = strconv.Atoi(v)
		case "timeout":
			cfg.timeout, err = strconv.Atoi(v)
		case "recovery":
			cfg.recovery = v
		case "throttle":
			cfg.throttle, err = strconv.Atoi(v)
		case "rx":
			cfg.rx, err = strconv.Atoi(v)
		case "seed":
			cfg.seed, err = strconv.ParseUint(v, 10, 64)
		case "shards":
			cfg.shards, err = strconv.Atoi(v)
		default:
			return cfg, fmt.Errorf("unknown override key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("override %q: %v", kv, err)
		}
	}
	return cfg, nil
}

func describe(c sideConfig) string {
	shape := "torus"
	if c.mesh {
		shape = "mesh"
	}
	if c.topo != "" {
		return fmt.Sprintf("%s | %s(M=%d) sel=%s | %s load=%.2f msg=%d | vc=%d depth=%d T=%d %s | seed=%d shards=%d",
			c.topo, c.alg, c.misroutes, c.sel,
			c.traffic, c.load, c.msgLen, c.vcs, c.depth, c.timeout, c.recovery, c.seed, c.shards)
	}
	return fmt.Sprintf("%s %dx%d | %s(M=%d) sel=%s | %s load=%.2f msg=%d | vc=%d depth=%d T=%d %s | seed=%d shards=%d",
		shape, c.radix, c.radix, c.alg, c.misroutes, c.sel,
		c.traffic, c.load, c.msgLen, c.vcs, c.depth, c.timeout, c.recovery, c.seed, c.shards)
}

func buildSim(c sideConfig) (*disha.Simulator, error) {
	var topo disha.Graph
	var err error
	if c.topo != "" {
		topo, err = disha.ParseTopology(c.topo)
	} else {
		radices := make([]int, c.dims)
		for i := range radices {
			radices[i] = c.radix
		}
		if c.mesh {
			topo, err = disha.NewMesh(radices...)
		} else {
			topo, err = disha.NewTorus(radices...)
		}
	}
	if err != nil {
		return nil, err
	}
	// Coordinate-dependent traffic needs the cube layer; fail up front with
	// a pointer at the incompatible pair rather than a type-assertion panic.
	coord := func(name string) (disha.Topology, error) {
		t, ok := topo.(disha.Topology)
		if !ok {
			return nil, fmt.Errorf("%s traffic needs cube coordinates, which %s does not have", name, topo.Name())
		}
		return t, nil
	}

	var alg disha.Algorithm
	recovery := false
	switch c.alg {
	case "disha":
		alg = disha.DishaRouting(c.misroutes)
		recovery = true
	case "dor":
		alg = disha.DOR()
	case "turn":
		alg = disha.NegativeFirst()
	case "dally":
		alg = disha.DallyAoki()
	case "duato":
		alg = disha.Duato()
	case "duato-strict":
		alg = disha.DuatoStrict()
	default:
		return nil, fmt.Errorf("unknown algorithm %q", c.alg)
	}

	var sel disha.Selection
	switch c.sel {
	case "random":
		sel = disha.RandomSelection()
	case "min-congestion":
		sel = disha.MinCongestionSelection()
	default:
		return nil, fmt.Errorf("unknown selection %q", c.sel)
	}

	var pattern disha.Pattern
	switch c.traffic {
	case "uniform":
		pattern = disha.Uniform(topo)
	case "bit-reversal":
		pattern, err = disha.BitReversal(topo)
	case "transpose":
		var t disha.Topology
		if t, err = coord(c.traffic); err == nil {
			pattern, err = disha.Transpose(t)
		}
	case "hotspot":
		pattern = disha.HotSpot(disha.Uniform(topo), disha.Node(topo.Nodes()/3), c.hotFrac)
	case "complement":
		var t disha.Topology
		if t, err = coord(c.traffic); err == nil {
			pattern = disha.Complement(t)
		}
	case "tornado":
		var t disha.Topology
		if t, err = coord(c.traffic); err == nil {
			pattern = disha.Tornado(t)
		}
	default:
		err = fmt.Errorf("unknown traffic %q", c.traffic)
	}
	if err != nil {
		return nil, err
	}

	var mode disha.RecoveryMode
	switch c.recovery {
	case "sequential":
		mode = disha.RecoverySequential
	case "concurrent":
		mode = disha.RecoveryConcurrent
	case "abort-retry":
		mode = disha.RecoveryAbortRetry
	default:
		return nil, fmt.Errorf("unknown recovery mode %q", c.recovery)
	}

	return disha.NewSimulator(disha.SimConfig{
		Topo:              topo,
		Algorithm:         alg,
		Selection:         sel,
		Pattern:           pattern,
		LoadRate:          c.load,
		MsgLen:            c.msgLen,
		VCs:               c.vcs,
		BufferDepth:       c.depth,
		Timeout:           disha.Cycle(c.timeout),
		DisableRecovery:   !recovery,
		Recovery:          mode,
		ReceptionChannels: c.rx,
		InjectionThrottle: c.throttle,
		Seed:              c.seed,
		Shards:            c.shards,
	})
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "disha-bisect:", err)
		os.Exit(2)
	}
}
