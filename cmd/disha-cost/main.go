// Command disha-cost evaluates Chien's router cost model (the paper's
// Section 3.4): the data-through cycle time of a Disha router versus the
// *-Channels deadlock-avoidance router, for the paper's configuration or a
// custom one.
//
// Examples:
//
//	disha-cost               # the paper's table: 2D mesh, 3 VCs
//	disha-cost -degree 6 -vcs 4 -sweep 8
package main

import (
	"flag"
	"fmt"

	disha "repro"
	"repro/internal/telemetry"
)

func main() {
	var (
		degree  = flag.Int("degree", 4, "network ports per router (2n for a k-ary n-cube)")
		vcs     = flag.Int("vcs", 3, "virtual channels per physical channel")
		sweep   = flag.Int("sweep", 0, "additionally sweep VCs from 1 to this count")
		version = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(telemetry.Build().String())
		return
	}

	fmt.Println("Chien cost model, 0.8 micron CMOS (paper Section 3.4)")
	fmt.Println()
	rows := disha.CompareRouterCost(
		disha.StarChannelsRouterCost(*degree, *vcs),
		disha.DishaRouterCost(*degree, *vcs),
	)
	fmt.Print(disha.FormatCostTable(rows))
	fmt.Printf("\nDisha data-through penalty: %+.1f%% for full adaptivity on every VC\n",
		100*(rows[1].Total-rows[0].Total)/rows[0].Total)

	if *sweep > 0 {
		fmt.Println("\nVC sweep:")
		var routers []disha.CostComparison
		for v := 1; v <= *sweep; v++ {
			routers = append(routers, disha.CompareRouterCost(
				disha.StarChannelsRouterCost(*degree, v),
				disha.DishaRouterCost(*degree, v),
			)...)
		}
		fmt.Print(disha.FormatCostTable(routers))
	}
}
