// Command disha-sim runs a single network simulation and prints a summary
// report: latency statistics, throughput, deadlock detection and recovery
// counters, and (optionally) a live wait-for-graph analysis.
//
// Example — the paper's configuration at moderate load:
//
//	disha-sim -radix 16 -alg disha -misroutes 3 -traffic uniform -load 0.5
//
// Example — a baseline without recovery:
//
//	disha-sim -alg duato -load 0.5 -cycles 20000
//
// Example — a non-cube topology by name (Disha routes on any graph):
//
//	disha-sim -topo dragonfly-4x2 -alg disha -load 0.3
//
// Example — full observability: Prometheus metrics + pprof on :9090 and a
// JSONL telemetry stream for disha-trace:
//
//	disha-sim -load 0.9 -vcs 1 -metrics-addr :9090 -trace-out run.jsonl -hold 60s
//	disha-trace run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	disha "repro"
	"repro/internal/chaos"
	"repro/internal/telemetry"
)

func main() {
	var (
		radix     = flag.Int("radix", 16, "nodes per dimension")
		dims      = flag.Int("dims", 2, "dimensions")
		mesh      = flag.Bool("mesh", false, "use a mesh instead of a torus")
		topoName  = flag.String("topo", "", `topology by name: "torus-8x8", "mesh-4x4x2", "hypercube-6", "fullmesh-16", "dragonfly-4x2", "fattree-4" (overrides -radix/-dims/-mesh)`)
		algName   = flag.String("alg", "disha", "routing algorithm: disha, dor, turn, dally, duato, duato-strict")
		misroutes = flag.Int("misroutes", 0, "Disha misroute bound M")
		selName   = flag.String("sel", "random", "selection function: random, min-congestion")
		trafName  = flag.String("traffic", "uniform", "pattern: uniform, bit-reversal, transpose, hotspot, complement, tornado")
		hotFrac   = flag.Float64("hotspot-fraction", 0.05, "hot-spot traffic fraction")
		load      = flag.Float64("load", 0.4, "offered load (fraction of capacity)")
		msgLen    = flag.Int("msglen", 32, "message length in flits")
		vcs       = flag.Int("vcs", 4, "virtual channels per physical channel")
		depth     = flag.Int("depth", 2, "per-VC buffer depth in flits")
		timeout   = flag.Int("timeout", 8, "deadlock time-out T_out (recovery algorithms)")
		cycles    = flag.Int("cycles", 10000, "cycles to simulate")
		recovMode = flag.String("recovery", "sequential", "recovery mode for disha: sequential, concurrent, abort-retry")
		throttle  = flag.Int("throttle", 0, "max outstanding packets per node (0 = unthrottled)")
		rx        = flag.Int("rx", 1, "reception channels per node")
		drain     = flag.Int("drain", 0, "extra cycles to drain after stopping injection (0 = no drain)")
		seed      = flag.Uint64("seed", 1, "random seed")
		shards    = flag.Int("shards", 0, "kernel worker shards per cycle (0/1 = serial; any value gives identical results)")
		activeSet = flag.Bool("active-set", true, "skip fully drained routers in the step kernel (identical results; disable only to benchmark the full-scan baseline)")
		refScan   = flag.Bool("reference-scan", false, "use the retained reference scan path instead of the optimized struct-of-arrays scans (identical results; exists for conformance testing and benchmarking)")
		wfg       = flag.Bool("wfg", false, "run the wait-for-graph analyzer at the end")

		chaosScript  = flag.String("chaos-script", "", "run a chaos campaign: JSON event-schedule of mid-run kill/heal/swap reconfiguration events (see CHAOS.md)")
		chaosGen     = flag.Int("chaos-gen", 0, "generate a seeded chaos campaign of this many kill/heal events for the current topology, save it to -chaos-script, then run it (seeded by -seed)")
		chaosRouters = flag.Bool("chaos-routers", false, "include router kill/heal events in -chaos-gen campaigns")

		ckptPath    = flag.String("checkpoint", "disha-sim.ckpt", "checkpoint file path (used by -checkpoint-every and -restore)")
		ckptEvery   = flag.Int("checkpoint-every", 0, "atomically save a checkpoint every N cycles (0 = off)")
		restore     = flag.Bool("restore", false, "restore the -checkpoint file before running; -cycles then counts total simulated cycles including the restored progress")
		fingerprint = flag.Bool("fingerprint", false, "print the final full-state SHA-256 fingerprint (restored runs match uninterrupted ones)")

		metricsAddr  = flag.String("metrics-addr", "", "serve Prometheus /metrics, /healthz, /buildz and /debug/pprof on this address (e.g. :9090)")
		traceOut     = flag.String("trace-out", "", "write telemetry samples, trace events, recovery-episode spans, flight-recorder snapshots and final counters as JSON Lines to this file")
		sampleEvery  = flag.Int("sample-every", 100, "telemetry sampling period in cycles (negative disables sampling)")
		profileEvery = flag.Int("profile-every", 64, "kernel phase-profiler sampling period in cycles (0 disables phase timing)")
		hold         = flag.Duration("hold", 0, "keep the -metrics-addr endpoint up this long after the run (for scraping/pprof)")
		version      = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(telemetry.Build().String())
		return
	}

	var topo disha.Graph
	var err error
	if *topoName != "" {
		topo, err = disha.ParseTopology(*topoName)
	} else {
		radices := make([]int, *dims)
		for i := range radices {
			radices[i] = *radix
		}
		if *mesh {
			topo, err = disha.NewMesh(radices...)
		} else {
			topo, err = disha.NewTorus(radices...)
		}
	}
	fail(err)

	var alg disha.Algorithm
	recovery := false
	switch *algName {
	case "disha":
		alg = disha.DishaRouting(*misroutes)
		recovery = true
	case "dor":
		alg = disha.DOR()
	case "turn":
		alg = disha.NegativeFirst()
	case "dally":
		alg = disha.DallyAoki()
	case "duato":
		alg = disha.Duato()
	case "duato-strict":
		alg = disha.DuatoStrict()
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algName))
	}

	var sel disha.Selection
	switch *selName {
	case "random":
		sel = disha.RandomSelection()
	case "min-congestion":
		sel = disha.MinCongestionSelection()
	default:
		fail(fmt.Errorf("unknown selection %q", *selName))
	}

	var pattern disha.Pattern
	switch *trafName {
	case "uniform":
		pattern = disha.Uniform(topo)
	case "bit-reversal":
		pattern, err = disha.BitReversal(topo)
	case "transpose":
		pattern, err = disha.Transpose(coordinated(topo, *trafName))
	case "hotspot":
		pattern, err = disha.NewHotSpot(disha.Uniform(topo), disha.Node(topo.Nodes()/3), *hotFrac)
	case "complement":
		pattern = disha.Complement(coordinated(topo, *trafName))
	case "tornado":
		pattern = disha.Tornado(coordinated(topo, *trafName))
	default:
		err = fmt.Errorf("unknown traffic %q", *trafName)
	}
	fail(err)

	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo:              topo,
		Algorithm:         alg,
		Selection:         sel,
		Pattern:           pattern,
		LoadRate:          *load,
		MsgLen:            *msgLen,
		VCs:               *vcs,
		BufferDepth:       *depth,
		Timeout:           disha.Cycle(*timeout),
		DisableRecovery:   !recovery,
		Recovery:          parseRecovery(*recovMode),
		ReceptionChannels: *rx,
		InjectionThrottle: *throttle,
		Seed:              *seed,
		Shards:            *shards,
		DisableActiveSet:  !*activeSet,
		ReferenceScan:     *refScan,
	})
	fail(err)
	defer sim.Close()

	// Restore must happen while the simulator is still fresh: the snapshot
	// carries a configuration guard, so mismatched flags fail loudly here.
	if *restore {
		fail(sim.LoadCheckpoint(*ckptPath))
		fmt.Fprintf(os.Stderr, "disha-sim: restored %s at cycle %d\n", *ckptPath, sim.Now())
	}

	// Observability: attach the telemetry hub when either output is wanted.
	var (
		tel       *disha.Telemetry
		tw        *disha.TelemetryWriter
		traceFile *os.File
	)
	if *metricsAddr != "" || *traceOut != "" {
		opts := disha.TelemetryOptions{SampleEvery: *sampleEvery, ProfileEvery: *profileEvery}
		if *traceOut != "" {
			traceFile, err = os.Create(*traceOut)
			fail(err)
			tw = disha.NewTelemetryWriter(traceFile)
			tw.Meta(map[string]string{
				"topology":  topo.Name(),
				"algorithm": alg.Name(),
				"traffic":   pattern.Name(),
				"load":      fmt.Sprintf("%g", *load),
				"msglen":    strconv.Itoa(*msgLen),
				"vcs":       strconv.Itoa(*vcs),
				"timeout":   strconv.Itoa(*timeout),
				"recovery":  *recovMode,
				"cycles":    strconv.Itoa(*cycles),
				"seed":      strconv.FormatUint(*seed, 10),
			})
			opts.Writer = tw
		}
		tel = sim.EnableTelemetry(opts)
		if tw != nil {
			// Tee every trace event into the JSONL stream as it happens.
			tb := sim.EnableTrace(4096)
			tb.SetSink(func(e disha.TraceEvent) {
				tw.Event(int64(e.Cycle), e.Kind.String(), int(e.Node), int64(e.Pkt))
			})
		}
		if *metricsAddr != "" {
			bound, shutdown, err := sim.ServeMetrics(*metricsAddr)
			fail(err)
			defer shutdown()
			fmt.Fprintf(os.Stderr, "disha-sim: serving /metrics and /debug/pprof on http://%s\n", bound)
		}
	}

	// Chaos campaigns arm after any restore (events before the restored
	// cycle were replayed from the checkpoint's reconfiguration log and are
	// dropped on arming, so a resumed run replays the remaining timeline
	// exactly — see CHAOS.md) and after telemetry, so the runner's
	// recovery/reconverge histograms register on the hub.
	if *chaosGen > 0 {
		if *chaosScript == "" {
			fail(fmt.Errorf("-chaos-gen requires -chaos-script (the file to write)"))
		}
		sched, err := chaos.Generate(chaos.CampaignConfig{
			Topo: topo, Seed: *seed, Events: *chaosGen, RouterKills: *chaosRouters,
		})
		fail(err)
		fail(sched.Save(*chaosScript))
		fmt.Fprintf(os.Stderr, "disha-sim: generated chaos campaign %q -> %s\n", sched.Name, *chaosScript)
	}
	var chaosRun *chaos.Runner
	if *chaosScript != "" {
		sched, err := chaos.Load(*chaosScript)
		fail(err)
		chaosRun, err = chaos.NewRunner(sim.Network(), sched)
		fail(err)
		fmt.Fprintf(os.Stderr, "disha-sim: chaos campaign %q armed: %d events\n", sched.Name, len(sched.Events))
	}

	var lat disha.LatencyCollector
	sim.OnDeliver(func(p *disha.Packet) { lat.Add(float64(p.Age())) })
	// -cycles is the absolute target, so a restored run stops at the same
	// cycle as the uninterrupted one it resumes. Checkpoints land exactly on
	// multiples of -checkpoint-every, making saves cycle-deterministic too.
	for int64(sim.Now()) < int64(*cycles) {
		step := int64(*cycles) - int64(sim.Now())
		if *ckptEvery > 0 {
			next := (int64(sim.Now())/int64(*ckptEvery) + 1) * int64(*ckptEvery)
			if next-int64(sim.Now()) < step {
				step = next - int64(sim.Now())
			}
		}
		if chaosRun != nil {
			chaosRun.Run(step)
		} else {
			sim.Run(int(step))
		}
		if *ckptEvery > 0 && int64(sim.Now())%int64(*ckptEvery) == 0 {
			fail(sim.SaveCheckpoint(*ckptPath))
		}
	}
	drained := false
	if *drain > 0 {
		drained = sim.Drain(*drain)
		if chaosRun != nil {
			chaosRun.Sync()
		}
	}
	if tel != nil {
		tel.Registry.Publish() // final state for late scrapes
	}
	if tw != nil {
		// Episodes still unresolved at end of run are flushed as "open"
		// spans so disha-trace sees every presumption.
		tel.Episodes.FlushOpen(int64(sim.Now()))
		tw.WriteCounters(int64(sim.Now()), sim.CountersMap())
		fail(tw.Flush())
		fail(traceFile.Close())
		fmt.Fprintf(os.Stderr, "disha-sim: telemetry written to %s\n", *traceOut)
	}

	fmt.Printf("%s | %s | %s | load %.2f | %d-flit messages | %d VCs x depth %d\n",
		topo.Name(), alg.Name(), pattern.Name(), *load, *msgLen, *vcs, *depth)
	fmt.Println(strings.Repeat("-", 72))
	fmt.Print(sim.Report())
	fmt.Printf("latency:           %v\n", lat.Summarize())
	if chaosRun != nil {
		s := chaosRun.Summary()
		fmt.Println(strings.Repeat("-", 72))
		fmt.Print(chaos.FormatReports(chaosRun.Reports()))
		fmt.Printf("chaos: %d events (%d applied, %d skipped, %d unreconverged) | lost %d pkts / %d flits | worst recovery %d cy, reconverge %d cy\n",
			s.Events, s.Applied, s.Skipped, s.Open, s.PacketsLost, s.FlitsLost, s.MaxRecovery, s.MaxReconverge)
	}
	if *drain > 0 {
		fmt.Printf("drained:           %v\n", drained)
	}
	if *wfg {
		res := sim.AnalyzeDeadlock()
		fmt.Printf("wfg blocked:       %d headers\n", len(res.Blocked))
		fmt.Printf("wfg true deadlock: %v (%d members)\n", res.TrueDeadlock(), len(res.Deadlocked))
	}
	if *fingerprint {
		fmt.Printf("fingerprint:       %s\n", sim.Fingerprint())
	}
	if *metricsAddr != "" && *hold > 0 {
		fmt.Fprintf(os.Stderr, "disha-sim: holding metrics endpoint for %v\n", *hold)
		time.Sleep(*hold)
	}
}

// coordinated unwraps the cube-coordinate layer of a topology, failing with
// a usable message when the selected traffic pattern needs coordinates that
// the chosen graph (full-mesh, dragonfly, fat-tree) does not have.
func coordinated(g disha.Graph, traffic string) disha.Topology {
	t, ok := g.(disha.Topology)
	if !ok {
		fail(fmt.Errorf("%s traffic needs cube coordinates, which %s does not have (try uniform or bit-reversal)", traffic, g.Name()))
	}
	return t
}

func parseRecovery(s string) disha.RecoveryMode {
	switch s {
	case "sequential":
		return disha.RecoverySequential
	case "concurrent":
		return disha.RecoveryConcurrent
	case "abort-retry":
		return disha.RecoveryAbortRetry
	default:
		fail(fmt.Errorf("unknown recovery mode %q", s))
		return disha.RecoverySequential
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "disha-sim:", err)
		os.Exit(1)
	}
}
