package disha_test

import (
	"strings"
	"testing"

	disha "repro"
)

func TestFacadeQuickstart(t *testing.T) {
	topo := disha.Torus(4, 4)
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo:      topo,
		Algorithm: disha.DishaRouting(0),
		Pattern:   disha.Uniform(topo),
		LoadRate:  0.3,
		MsgLen:    8,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(2000)
	if !sim.Drain(10000) {
		t.Fatal("did not drain")
	}
	c := sim.Counters()
	if c.PacketsDelivered == 0 || c.PacketsDelivered != c.PacketsInjected {
		t.Fatalf("delivery accounting wrong: %+v", c)
	}
	rep := sim.Report()
	for _, want := range []string{"packets delivered", "token seizures"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestFacadeOnDeliverAndAnalyzer(t *testing.T) {
	topo := disha.Torus(4, 4)
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo:      topo,
		Algorithm: disha.DishaRouting(3),
		Pattern:   disha.Uniform(topo),
		LoadRate:  0.5,
		MsgLen:    8,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lat disha.LatencyCollector
	sim.OnDeliver(func(p *disha.Packet) { lat.Add(float64(p.Age())) })
	sim.Run(3000)
	if lat.Count() == 0 {
		t.Fatal("no deliveries observed")
	}
	if lat.Mean() <= 0 {
		t.Fatal("non-positive latency")
	}
	_ = sim.AnalyzeDeadlock() // must not panic on a live network
}

func TestFacadeAvoidanceConfig(t *testing.T) {
	topo := disha.Torus(4, 4)
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo:            topo,
		Algorithm:       disha.Duato(),
		Pattern:         disha.Uniform(topo),
		LoadRate:        0.3,
		MsgLen:          8,
		Seed:            3,
		DisableRecovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(2000)
	if c := sim.Counters(); c.TokenSeizures != 0 || c.TimeoutEvents != 0 {
		t.Fatal("recovery was not disabled")
	}
}

func TestFacadeAlgorithmNames(t *testing.T) {
	names := map[string]disha.Algorithm{
		"disha-m0":            disha.DishaRouting(0),
		"disha-m3":            disha.DishaRouting(3),
		"dor":                 disha.DOR(),
		"turn-negative-first": disha.NegativeFirst(),
		"dally-aoki":          disha.DallyAoki(),
		"duato":               disha.Duato(),
		"duato-strict":        disha.DuatoStrict(),
	}
	for want, alg := range names {
		if alg.Name() != want {
			t.Errorf("name %q, want %q", alg.Name(), want)
		}
	}
	if disha.RandomSelection().Name() != "random" || disha.MinCongestionSelection().Name() != "min-congestion" {
		t.Error("selection names wrong")
	}
}

func TestFacadeFigures(t *testing.T) {
	sc := disha.SmallScale()
	if disha.Figure("4", sc) == nil || disha.Figure("nope", sc) != nil {
		t.Fatal("Figure lookup broken")
	}
	if disha.Figure("fullmesh", sc) == nil {
		t.Fatal("fullmesh baseline figure missing")
	}
	if len(disha.Figures(sc)) != 7 {
		t.Fatal("expected 7 canned figures")
	}
}

func TestFacadeCostTable(t *testing.T) {
	rows := disha.PaperCostTable()
	if len(rows) != 2 {
		t.Fatal("cost table rows")
	}
	s := disha.FormatCostTable(rows)
	if !strings.Contains(s, "disha") {
		t.Fatal("cost table text")
	}
	if disha.DishaRouterCost(4, 3).CrossbarInputs() != disha.StarChannelsRouterCost(4, 3).CrossbarInputs()+1 {
		t.Fatal("Disha must add exactly one crossbar input")
	}
}

func TestFacadePatterns(t *testing.T) {
	topo := disha.Torus(4, 4)
	if _, err := disha.BitReversal(topo); err != nil {
		t.Fatal(err)
	}
	if _, err := disha.Transpose(topo); err != nil {
		t.Fatal(err)
	}
	hs := disha.HotSpot(disha.Uniform(topo), 5, 0.05)
	if !strings.Contains(hs.Name(), "hotspot") {
		t.Fatal("hotspot name")
	}
	if disha.Complement(topo).Name() != "complement" || disha.Tornado(topo).Name() != "tornado" {
		t.Fatal("extension pattern names")
	}
}

func TestFacadeTrace(t *testing.T) {
	topo := disha.Torus(4, 4)
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo:        topo,
		Algorithm:   disha.DishaRouting(0),
		Pattern:     disha.Uniform(topo),
		LoadRate:    0.9,
		MsgLen:      8,
		VCs:         1,
		BufferDepth: 1,
		Timeout:     8,
		Seed:        12,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := sim.EnableTrace(4096)
	sim.Run(3000)
	sim.Drain(60000)
	if buf.Count(disha.TraceInject) == 0 || buf.Count(disha.TraceDeliver) == 0 {
		t.Fatal("trace missing inject/deliver events")
	}
	c := sim.Counters()
	if buf.Count(disha.TraceTokenCapture) != c.TokenSeizures {
		t.Fatalf("trace captures %d != seizures %d", buf.Count(disha.TraceTokenCapture), c.TokenSeizures)
	}
	if buf.Count(disha.TraceTokenRelease) != c.TokenSeizures {
		t.Fatalf("releases %d != seizures %d", buf.Count(disha.TraceTokenRelease), c.TokenSeizures)
	}
	if buf.Count(disha.TraceTimeout) != c.TimeoutEvents {
		t.Fatalf("trace timeouts %d != counter %d", buf.Count(disha.TraceTimeout), c.TimeoutEvents)
	}
	if c.TokenSeizures > 0 {
		// A recovered packet's retained history should show the protocol
		// order: timeout before recover.
		recs := buf.Filter(disha.TraceRecover)
		last := recs[len(recs)-1]
		hist := buf.PacketHistory(last.Pkt)
		sawTimeout := false
		for _, e := range hist {
			if e.Kind == disha.TraceTimeout {
				sawTimeout = true
			}
			if e.Kind == disha.TraceRecover && !sawTimeout {
				t.Fatal("recover recorded before timeout")
			}
		}
	}
}

func TestFacadeHypercube(t *testing.T) {
	h := disha.Hypercube(4)
	if h.Nodes() != 16 || h.Name() != "hypercube-4" {
		t.Fatalf("hypercube facade wrong: %s %d nodes", h.Name(), h.Nodes())
	}
	if _, err := disha.NewHypercube(0); err == nil {
		t.Fatal("0-dim hypercube should fail")
	}
}

func TestFacadeRecoveryModes(t *testing.T) {
	for _, mode := range []disha.RecoveryMode{
		disha.RecoverySequential, disha.RecoveryConcurrent, disha.RecoveryAbortRetry,
	} {
		topo := disha.Torus(4, 4)
		sim, err := disha.NewSimulator(disha.SimConfig{
			Topo:        topo,
			Algorithm:   disha.DishaRouting(0),
			Pattern:     disha.Uniform(topo),
			LoadRate:    0.8,
			MsgLen:      8,
			VCs:         1,
			BufferDepth: 1,
			Timeout:     8,
			Recovery:    mode,
			Seed:        12,
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		sim.Run(2500)
		if !sim.Drain(120000) {
			t.Fatalf("%v failed to drain", mode)
		}
		c := sim.Counters()
		switch mode {
		case disha.RecoverySequential:
			if c.TokenSeizures == 0 {
				t.Error("sequential: expected token seizures")
			}
		case disha.RecoveryConcurrent:
			if c.Recoveries == 0 || c.TokenSeizures != 0 {
				t.Errorf("concurrent: recoveries=%d seizures=%d", c.Recoveries, c.TokenSeizures)
			}
		case disha.RecoveryAbortRetry:
			if c.PacketsKilled == 0 {
				t.Error("abort-retry: expected kills")
			}
		}
	}
}

func TestFacadePlots(t *testing.T) {
	sc := disha.ExperimentScale{Radix: 4, MsgLen: 8, Warmup: 200, Measure: 600,
		Loads: []float64{0.2, 0.4}, Seed: 5}
	spec := disha.Figure("4", sc)
	spec.Algs = spec.Algs[:2]
	res, err := spec.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	lat := disha.PlotLatency("latency", res)
	thr := disha.PlotThroughput("throughput", res)
	if !strings.Contains(lat, "log scale") || !strings.Contains(thr, "accepted") {
		t.Fatal("plots malformed")
	}
	for _, s := range res.Series {
		if !strings.Contains(lat, s.Label) {
			t.Fatalf("legend missing %s", s.Label)
		}
	}
}

func TestFacadeFaultInjection(t *testing.T) {
	topo := disha.Torus(4, 4)
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo:      topo,
		Algorithm: disha.DishaRouting(3),
		Pattern:   disha.Uniform(topo),
		LoadRate:  0.3,
		MsgLen:    8,
		Timeout:   8,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.FailLink(0, 0); err != nil {
		t.Fatal(err)
	}
	sim.Run(2000)
	if !sim.Drain(30000) {
		t.Fatal("faulty network did not drain under Disha")
	}
}

func TestFacadeBurstyConfig(t *testing.T) {
	topo := disha.Torus(4, 4)
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo:      topo,
		Algorithm: disha.DishaRouting(0),
		Pattern:   disha.Uniform(topo),
		LoadRate:  0.4,
		MsgLen:    8,
		Timeout:   8,
		Burst:     disha.BurstConfig{MeanBurst: 40, MeanIdle: 120},
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(3000)
	if !sim.Drain(30000) {
		t.Fatal("bursty run did not drain")
	}
	if sim.Counters().PacketsDelivered == 0 {
		t.Fatal("bursty run delivered nothing")
	}
}
