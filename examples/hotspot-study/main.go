// Hot-spot study: the paper's Figure 7 finding that misrouting — harmful
// under every other workload — helps when traffic concentrates on one node.
//
// 5% of all traffic targets a single hot node. The example compares Disha
// with misroute bounds M = 0, 1, 3 and 5 plus Duato, printing throughput at
// a fixed load and the misroute-hop counts, to show non-minimal routing
// steering packets around the congested region.
package main

import (
	"fmt"
	"log"

	disha "repro"
)

func main() {
	topo := disha.Torus(8, 8)
	spot := topo.NodeAt(disha.Coord{3, 5})
	fmt.Printf("hot spot: 5%% of traffic -> node %v on %s\n\n", topo.Coord(spot), topo.Name())
	fmt.Printf("%-12s %10s %12s %14s %12s\n", "scheme", "delivered", "mean-latency", "misroute-hops", "seizures")

	type cfg struct {
		label    string
		alg      disha.Algorithm
		recovery bool
	}
	cfgs := []cfg{
		{"disha-m0", disha.DishaRouting(0), true},
		{"disha-m1", disha.DishaRouting(1), true},
		{"disha-m3", disha.DishaRouting(3), true},
		{"disha-m5", disha.DishaRouting(5), true},
		{"duato", disha.Duato(), false},
	}
	for _, c := range cfgs {
		pattern := disha.HotSpot(disha.Uniform(topo), spot, 0.05)
		sim, err := disha.NewSimulator(disha.SimConfig{
			Topo:            topo,
			Algorithm:       c.alg,
			Pattern:         pattern,
			LoadRate:        0.25, // hot spots saturate early (paper Fig. 7)
			MsgLen:          16,
			Timeout:         8,
			DisableRecovery: !c.recovery,
			Seed:            7,
		})
		if err != nil {
			log.Fatal(err)
		}
		var lat disha.LatencyCollector
		sim.OnDeliver(func(p *disha.Packet) { lat.Add(float64(p.Age())) })
		sim.Run(8000)
		st := sim.Counters()
		fmt.Printf("%-12s %10d %12.1f %14d %12d\n",
			c.label, st.PacketsDelivered, lat.Mean(), st.MisrouteHops, st.TokenSeizures)
	}

	fmt.Println()
	fmt.Println("paper's observation: with hot spots and no misrouting the deadlock")
	fmt.Println("count grows sharply; allowing a few misroutes routes packets around")
	fmt.Println("the congested region, so M>0 beats M=0 here — the reverse of the")
	fmt.Println("uniform/bit-reversal/transpose results.")
}
