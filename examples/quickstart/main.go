// Quickstart: simulate the paper's network (a 16x16 torus with 4 virtual
// channels and 32-flit messages) running Disha's true fully adaptive
// routing at moderate load, then print delivery statistics. Everything
// here uses the public facade (module root package "repro").
package main

import (
	"fmt"
	"log"

	disha "repro"
)

func main() {
	// The paper's simulation model: a 16-ary 2-cube torus.
	topo := disha.Torus(16, 16)

	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo:      topo,
		Algorithm: disha.DishaRouting(0), // minimal fully adaptive (M=0)
		Pattern:   disha.Uniform(topo),
		LoadRate:  0.4, // fraction of full network capacity
		MsgLen:    32,  // flits per message
		Timeout:   8,   // T_out: presume deadlock after 8 blocked cycles
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Collect per-packet latency while the network runs.
	var latency disha.LatencyCollector
	sim.OnDeliver(func(p *disha.Packet) { latency.Add(float64(p.Age())) })

	sim.Run(10000)

	fmt.Println("DISHA quickstart —", topo.Name())
	fmt.Print(sim.Report())
	fmt.Println("latency:          ", latency.Summarize())

	// Stop injecting and let every in-flight packet sink. A network with
	// recovery always drains: any deadlock cycle is broken through the
	// Deadlock Buffer lane.
	if sim.Drain(100000) {
		fmt.Println("network drained cleanly — every packet delivered")
	} else {
		fmt.Println("network failed to drain (this should never happen with recovery on)")
	}
}
