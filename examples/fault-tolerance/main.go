// Fault tolerance: the paper's claim that Disha "provides good
// fault-tolerance capability" while restricted schemes cannot.
//
// Three links of a 4x4 torus are failed. Dimension-order routing has exactly
// one path per packet, so traffic needing a dead link wedges forever. Disha
// routes around the faults adaptively (misrouting where no minimal live port
// remains), and any packet stranded behind a fault times out and escapes
// through the Deadlock Buffer lane — which is itself re-routed over live
// links when a fault is injected.
package main

import (
	"fmt"
	"log"

	disha "repro"
)

func build(alg disha.Algorithm, recovery bool) *disha.Simulator {
	topo := disha.Torus(4, 4)
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo:            topo,
		Algorithm:       alg,
		Pattern:         disha.Uniform(topo),
		LoadRate:        0.4,
		MsgLen:          8,
		Timeout:         8,
		DisableRecovery: !recovery,
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	return sim
}

func failLinks(sim *disha.Simulator) {
	topo := disha.Torus(4, 4)
	faults := []struct {
		at   disha.Coord
		port int
	}{
		{disha.Coord{0, 0}, 0}, // +X from (0,0)
		{disha.Coord{2, 1}, 2}, // +Y from (2,1)
		{disha.Coord{3, 3}, 1}, // -X from (3,3)
	}
	for _, f := range faults {
		if err := sim.FailLink(topo.NodeAt(f.at), f.port); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  failed link at %v port %d\n", f.at, f.port)
	}
}

func main() {
	fmt.Println("--- dimension-order routing across 3 failed links ---")
	dor := build(disha.DOR(), false)
	failLinks(dor)
	dor.Run(4000)
	if dor.Drain(20000) {
		fmt.Println("(no packet happened to need a dead link)")
	} else {
		fmt.Printf("WEDGED: %d packets can never be delivered (their only path is dead)\n\n",
			dor.Counters().PacketsInjected-dor.Counters().PacketsDelivered)
	}

	fmt.Println("--- Disha (M=3) across the same 3 failed links ---")
	d := build(disha.DishaRouting(3), true)
	failLinks(d)
	d.Run(4000)
	if !d.Drain(60000) {
		log.Fatal("Disha failed to drain on the faulty network — bug!")
	}
	c := d.Counters()
	fmt.Printf("delivered %d/%d packets (%d misroute hops around faults, %d recoveries)\n",
		c.PacketsDelivered, c.PacketsInjected, c.MisrouteHops, c.Recoveries)
	fmt.Println("fully adaptive routing + a fault-aware recovery lane = every packet arrives")
}
