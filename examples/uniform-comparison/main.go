// Uniform-traffic comparison: a miniature of the paper's Figure 4.
//
// It sweeps offered load on an 8x8 torus and compares Disha (M=0 and M=3)
// against the four deadlock-avoidance baselines the paper simulates: Duato,
// Dally & Aoki (with minimum-congestion selection, as in the paper), the
// Turn model's negative-first, and dimension-order routing. Run with
// cmd/disha-sweep -fig 4 for the full 16x16 version.
package main

import (
	"fmt"
	"log"
	"time"

	disha "repro"
)

func main() {
	sc := disha.SmallScale()
	sc.Loads = []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7}

	spec := disha.Figure("4", sc)
	start := time.Now()
	fmt.Println("running mini Figure 4 (uniform traffic, 8x8 torus) — ~1 minute")
	res, err := spec.Run(func(line string) { fmt.Println("  " + line) })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(res.LatencyTable())
	fmt.Println(res.ThroughputTable())
	fmt.Println(disha.PlotThroughput("mini Figure 4 — accepted throughput vs offered load", res))
	fmt.Println(res.SaturationSummary())
	fmt.Println("elapsed:", time.Since(start).Round(time.Second))
	fmt.Println()
	fmt.Println("expected shape (paper Fig. 4): Disha saturates last and sustains the")
	fmt.Println("highest throughput; Duato and Dally & Aoki follow; DOR and the Turn")
	fmt.Println("model saturate first. See EXPERIMENTS.md for the measured numbers.")
}
