// Time-out tuning: a miniature of the paper's Figure 3b.
//
// The deadlock presumption threshold T_out is the one parameter DISHA must
// get right: too small and transient blocking triggers false detections
// that send healthy packets down the slow recovery lane; too large and real
// deadlocks fester, dragging more routers into the cycle. The paper finds
// 8-16 cycles appropriate for its configuration. This example sweeps T_out
// and prints latency, timeout-event and token-seizure counts per value.
package main

import (
	"fmt"
	"log"

	disha "repro"
)

func main() {
	topo := disha.Torus(8, 8)
	const load = 0.55
	fmt.Printf("%s, disha-m3, uniform traffic, load %.2f\n\n", topo.Name(), load)
	fmt.Printf("%8s %12s %12s %14s %14s\n", "T_out", "latency", "p95", "timeouts", "seizures")

	for _, tout := range []disha.Cycle{2, 4, 8, 16, 32, 64, 128} {
		sim, err := disha.NewSimulator(disha.SimConfig{
			Topo:      topo,
			Algorithm: disha.DishaRouting(3),
			Pattern:   disha.Uniform(topo),
			LoadRate:  load,
			MsgLen:    16,
			Timeout:   tout,
			Seed:      3,
		})
		if err != nil {
			log.Fatal(err)
		}
		var lat disha.LatencyCollector
		sim.OnDeliver(func(p *disha.Packet) { lat.Add(float64(p.Age())) })
		sim.Run(8000)
		c := sim.Counters()
		fmt.Printf("%8d %12.1f %12.0f %14d %14d\n",
			tout, lat.Mean(), lat.Percentile(95), c.TimeoutEvents, c.TokenSeizures)
	}

	fmt.Println()
	fmt.Println("small T_out => many timeout events (false detections); large T_out")
	fmt.Println("=> few detections but slow recovery of real deadlocks. The paper's")
	fmt.Println("default is 8; it also notes the optimum shifts with message length,")
	fmt.Println("traffic pattern and topology (their proposed future work is making")
	fmt.Println("T_out adapt dynamically).")
}
