// Hypercube: Disha on an arbitrary topology.
//
// The paper's claim 2) is that the scheme "is applicable to any
// interconnection network topology": the Deadlock Buffer lane only needs a
// connected minimal routing subfunction, which dimension-order provides on
// any k-ary n-cube. This example runs true fully adaptive routing with
// recovery on a 6-dimensional binary hypercube (64 nodes) and on a 3D torus
// side by side, using identical code paths.
package main

import (
	"fmt"
	"log"

	disha "repro"
)

func run(topo disha.Topology, load float64) {
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo:      topo,
		Algorithm: disha.DishaRouting(0),
		Pattern:   disha.Uniform(topo),
		LoadRate:  load, // modest: high-degree networks are injection-channel-limited
		MsgLen:    16,
		Timeout:   8,
		Seed:      21,
	})
	if err != nil {
		log.Fatal(err)
	}
	var lat disha.LatencyCollector
	sim.OnDeliver(func(p *disha.Packet) { lat.Add(float64(p.Age())) })
	sim.Run(6000)
	if !sim.Drain(60000) {
		log.Fatalf("%s failed to drain", topo.Name())
	}
	c := sim.Counters()
	fmt.Printf("%-14s delivered=%6d latency=%7.1f timeouts=%4d recoveries=%3d\n",
		topo.Name(), c.PacketsDelivered, lat.Mean(), c.TimeoutEvents, c.Recoveries)
}

func main() {
	fmt.Println("Disha is topology agnostic — same routing, same recovery machinery:")
	run(disha.Hypercube(6), 0.2)
	run(disha.Torus(4, 4, 4), 0.2)
	run(disha.Mesh(8, 8), 0.2)
	run(disha.Torus(16, 16), 0.2)
}
