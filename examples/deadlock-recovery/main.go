// Deadlock recovery, demonstrated end to end.
//
// This example makes the paper's core claim concrete. It builds a small
// torus with a single virtual channel and single-flit-deep buffers — the
// most deadlock-prone configuration possible — and drives unrestricted
// fully adaptive routing hard:
//
//  1. with recovery DISABLED, true deadlock cycles form (verified with the
//     wait-for-graph analyzer) and the network wedges permanently;
//  2. with DISHA recovery ENABLED (time-out detection + Token + Deadlock
//     Buffers), the same routing under the same workload always drains.
package main

import (
	"fmt"
	"log"

	disha "repro"
)

const (
	radix  = 4
	load   = 0.9
	msgLen = 8
	seed   = 12
)

func build(recovery bool, mode disha.RecoveryMode) *disha.Simulator {
	topo := disha.Torus(radix, radix)
	sim, err := disha.NewSimulator(disha.SimConfig{
		Topo:            topo,
		Algorithm:       disha.DishaRouting(0),
		Pattern:         disha.Uniform(topo),
		LoadRate:        load,
		MsgLen:          msgLen,
		VCs:             1, // no virtual channels at all:
		BufferDepth:     1, // Disha needs none for deadlock freedom
		Timeout:         8,
		DisableRecovery: !recovery,
		Recovery:        mode,
		Seed:            seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return sim
}

func main() {
	fmt.Println("--- phase 1: unrestricted adaptive routing WITHOUT recovery ---")
	wedged := build(false, disha.RecoverySequential)
	wedged.Run(4000)
	res := wedged.AnalyzeDeadlock()
	fmt.Printf("wait-for-graph: %d blocked headers, true deadlock = %v (%d members)\n",
		len(res.Blocked), res.TrueDeadlock(), len(res.Deadlocked))
	for i, bh := range res.Deadlocked {
		if i == 4 {
			fmt.Println("   ...")
			break
		}
		fmt.Printf("   member: %v waits on %d packet(s)\n", bh.Pkt, len(bh.WaitsOn))
	}
	drained := wedged.Drain(30000)
	fmt.Printf("drained after stopping injection: %v (in flight: %d)\n\n",
		drained, wedged.Counters().PacketsInjected-wedged.Counters().PacketsDelivered)

	fmt.Println("--- phase 2: the same routing WITH Disha recovery ---")
	recovered := build(true, disha.RecoverySequential)
	buf := recovered.EnableTrace(64) // keep the last few protocol events
	recovered.Run(4000)
	if !recovered.Drain(100000) {
		log.Fatal("recovery-enabled network failed to drain — bug!")
	}
	c := recovered.Counters()
	fmt.Print(recovered.Report())
	fmt.Printf("\nevery one of the %d injected packets was delivered;\n", c.PacketsInjected)
	fmt.Printf("%d deadlocked packets escaped through the Deadlock Buffer lane\n", c.TokenSeizures)
	fmt.Println("(each seized the Token, crawled the DB lane minimally, and sank at its destination)")
	fmt.Println("\nlast protocol events from the trace:")
	events := buf.Events()
	for i := len(events) - 6; i < len(events); i++ {
		if i >= 0 {
			fmt.Println("  ", events[i])
		}
	}

	fmt.Println("\n--- phase 3: token-free CONCURRENT recovery (future work in the paper) ---")
	cr := build(true, disha.RecoveryConcurrent)
	cr.Run(4000)
	if !cr.Drain(100000) {
		log.Fatal("concurrent-recovery network failed to drain — bug!")
	}
	cc := cr.Counters()
	fmt.Printf("delivered %d/%d packets; %d recoveries with no token at all\n",
		cc.PacketsDelivered, cc.PacketsInjected, cc.Recoveries)
	fmt.Println("(deadlocked packets recover immediately over two direction-partitioned")
	fmt.Println(" Hamiltonian Deadlock Buffer lanes — see DESIGN.md for the construction)")
}
